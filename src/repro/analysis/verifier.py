"""Static verification of the Schedule IR.

:func:`verify_program` proves, without replaying a single op, every
invariant the replay machinery otherwise checks dynamically mid-charge or
silently assumes: op kinds and payload typing (finite non-negative flops,
non-negative :class:`~repro.costmodel.collectives.CollectiveCost` fields,
payload-free barriers), template-rank bounds, pairwise disjointness of
``OP_COMM`` group rows (the property that makes family-batched charging
commute), phase-index validity, and dead phases nothing references.

:func:`verify_binding` does the same for a
:class:`~repro.sched.binding.RankFamilyMap` against a program and an
optional target machine size: template-size agreement, instance
disjointness, rank bounds, and machine coverage -- the preconditions
under which the collapsed-template replay path
(:meth:`~repro.sched.replay.BoundProgram.replay`) is *statically
admissible* rather than trusted.

Both return ``List[Finding]`` (empty == verified).  The passes are pure
reads: they never mutate the program and are safe on untrusted unpickled
artifacts -- which is exactly how the cache layer uses them
(semantically-invalid entries read as misses, see
:class:`~repro.sched.cache.ProgramCache`).

Rule identifiers are stable strings (``ir/op-kind``, ``ir/rank-bounds``,
...) so tests, metrics, and per-rule documentation can reference them.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.analysis.findings import (
    SEVERITY_WARNING,
    Finding,
    VerificationError,
    has_errors,
)
from repro.costmodel.collectives import CollectiveCost
from repro.sched.binding import RankFamilyMap
from repro.sched.program import OP_BARRIER, OP_COMM, OP_FLOPS, ChargeProgram

#: Every program rule :func:`verify_program` can emit, with a one-line
#: description (the ``repro check --rules`` table).
PROGRAM_RULES = {
    "ir/program-ranks": "num_ranks is a non-negative integer",
    "ir/phase-table": "phase names are unique non-empty strings",
    "ir/op-kind": "op kind is one of flops/comm/barrier",
    "ir/rank-shape": "rank operand has the kind's shape (1D flops/barrier, 2D comm) and an integer dtype",
    "ir/rank-bounds": "every rank index lies in [0, num_ranks)",
    "ir/comm-disjoint": "OP_COMM group rows are pairwise disjoint",
    "ir/flops-payload": "flops payloads are finite non-negative floats",
    "ir/comm-payload": "comm payloads are CollectiveCost with finite non-negative fields",
    "ir/barrier-payload": "barriers carry no payload",
    "ir/phase-index": "phase indices address the phase table (-1 for barriers)",
    "ir/dead-phase": "every phase-table entry is referenced by some op (warning)",
}

#: Every binding rule :func:`verify_binding` can emit.
BINDING_RULES = {
    "bind/template-size": "binding template size matches the program rank space",
    "bind/instance-disjoint": "bound instances are pairwise-disjoint rank sets",
    "bind/rank-bounds": "every concrete rank is non-negative (and < machine size when given)",
    "bind/machine-coverage": "instances cover the whole machine (warning when partial: collapsed replay falls back to scatter)",
}


def _is_int_array(ranks: object) -> bool:
    return isinstance(ranks, np.ndarray) and ranks.dtype.kind in "iu"


def verify_program(program: ChargeProgram) -> List[Finding]:
    """Statically check *program*; an empty list means it verifies clean.

    O(ops) plus one vectorized pass over each op's rank operand -- cheap
    enough to gate every cache load and (behind the
    ``REPRO_SCHED_VERIFY`` flag) every capture.
    """
    findings: List[Finding] = []
    num_ranks = getattr(program, "num_ranks", None)
    if not isinstance(num_ranks, int) or isinstance(num_ranks, bool) \
            or num_ranks < 0:
        findings.append(Finding("ir/program-ranks", "num_ranks",
                                f"num_ranks must be a non-negative int, "
                                f"got {num_ranks!r}"))
        num_ranks = None  # rank-bounds checks are meaningless; skip them

    phases = list(getattr(program, "phases", []))
    seen: dict = {}
    for i, name in enumerate(phases):
        if not isinstance(name, str) or not name:
            findings.append(Finding("ir/phase-table", f"phases[{i}]",
                                    f"phase name must be a non-empty "
                                    f"string, got {name!r}"))
        elif name in seen:
            findings.append(Finding(
                "ir/phase-table", f"phases[{i}]",
                f"duplicate phase name {name!r} (first at "
                f"phases[{seen[name]}]); replay phase-id resolution would "
                f"alias the two"))
        else:
            seen[name] = i

    referenced = np.zeros(len(phases), dtype=bool)
    for i, op in enumerate(program.ops):
        loc = f"op[{i}]"
        kind = op.kind
        if kind not in (OP_FLOPS, OP_COMM, OP_BARRIER):
            findings.append(Finding("ir/op-kind", loc,
                                    f"unknown op kind {kind!r}"))
            continue

        # -- rank operands --------------------------------------------------------
        ranks = op.ranks
        ranks_ok = False
        if kind == OP_BARRIER and ranks is None:
            ranks_ok = True  # whole-template barrier
        elif not _is_int_array(ranks):
            findings.append(Finding(
                "ir/rank-shape", loc,
                f"{kind} ranks must be an integer ndarray, got "
                f"{type(ranks).__name__}"
                + (f" of dtype {ranks.dtype}" if isinstance(ranks, np.ndarray)
                   else "")))
        elif kind == OP_COMM and ranks.ndim != 2:
            findings.append(Finding(
                "ir/rank-shape", loc,
                f"comm ranks must be a 2D (groups x size) matrix, got "
                f"ndim={ranks.ndim}"))
        elif kind != OP_COMM and ranks.ndim != 1:
            findings.append(Finding(
                "ir/rank-shape", loc,
                f"{kind} ranks must be a 1D rank family, got "
                f"ndim={ranks.ndim}"))
        else:
            ranks_ok = True

        if ranks_ok and ranks is not None and ranks.size:
            if num_ranks is not None and (
                    int(ranks.min()) < 0 or int(ranks.max()) >= num_ranks):
                findings.append(Finding(
                    "ir/rank-bounds", loc,
                    f"rank indices [{int(ranks.min())}, {int(ranks.max())}] "
                    f"fall outside the template rank space "
                    f"[0, {num_ranks})"))
            elif kind == OP_COMM and np.unique(ranks).size != ranks.size:
                # Disjointness is what lets one vectorized call charge all
                # groups at once (disjoint charges commute); an aliased
                # rank would be double-charged in an order-dependent way.
                findings.append(Finding(
                    "ir/comm-disjoint", loc,
                    f"comm group rows share ranks "
                    f"({ranks.size - int(np.unique(ranks).size)} duplicate "
                    f"entr(y/ies) across {ranks.shape[0]} group(s))"))

        # -- payloads -------------------------------------------------------------
        payload = op.payload
        if kind == OP_FLOPS:
            if not isinstance(payload, float) or isinstance(payload, bool):
                findings.append(Finding(
                    "ir/flops-payload", loc,
                    f"flops payload must be a float, got "
                    f"{type(payload).__name__}"))
            elif not math.isfinite(payload) or payload < 0:
                findings.append(Finding(
                    "ir/flops-payload", loc,
                    f"flops payload must be finite and >= 0, got {payload!r}"))
        elif kind == OP_COMM:
            if not isinstance(payload, CollectiveCost):
                findings.append(Finding(
                    "ir/comm-payload", loc,
                    f"comm payload must be a CollectiveCost, got "
                    f"{type(payload).__name__}"))
            elif not (math.isfinite(payload.messages)
                      and math.isfinite(payload.words)
                      and payload.messages >= 0 and payload.words >= 0):
                findings.append(Finding(
                    "ir/comm-payload", loc,
                    f"CollectiveCost fields must be finite and >= 0, got "
                    f"messages={payload.messages!r}, "
                    f"words={payload.words!r}"))
        elif payload is not None:
            findings.append(Finding(
                "ir/barrier-payload", loc,
                f"barriers are pure clock synchronization and must carry "
                f"no payload, got {type(payload).__name__}"))

        # -- phase indices --------------------------------------------------------
        phase = op.phase
        if kind == OP_BARRIER:
            if phase != -1:
                findings.append(Finding(
                    "ir/phase-index", loc,
                    f"barriers are phase-less (phase must be -1), got "
                    f"{phase!r}"))
        elif not isinstance(phase, int) or isinstance(phase, bool) \
                or not 0 <= phase < len(phases):
            findings.append(Finding(
                "ir/phase-index", loc,
                f"phase index {phase!r} outside the phase table "
                f"[0, {len(phases)})"))
        else:
            referenced[phase] = True

    for i in np.flatnonzero(~referenced):
        findings.append(Finding(
            "ir/dead-phase", f"phases[{i}]",
            f"phase {phases[i]!r} is never referenced by any op",
            severity=SEVERITY_WARNING))
    return findings


def verify_binding(program: ChargeProgram, binding: RankFamilyMap,
                   machine_ranks: Optional[int] = None) -> List[Finding]:
    """Statically check *binding* against *program* (and a machine size).

    Proves the preconditions collapsed-template replay otherwise trusts:
    the binding's template size matches the program's rank space, bound
    instances are pairwise disjoint (disjoint charges commute -- the
    bit-identity argument), concrete ranks are in bounds, and -- when
    *machine_ranks* is given -- whether the instances partition the
    machine (full coverage is what enables the O(template) collapsed
    scatter; partial coverage is correct but falls back, reported as a
    warning).
    """
    findings: List[Finding] = []
    maps = binding.maps
    if binding.template_size != program.num_ranks:
        findings.append(Finding(
            "bind/template-size", "maps",
            f"binding template size {binding.template_size} does not match "
            f"program rank space {program.num_ranks}"))
    flat = maps.reshape(-1)
    if flat.size and np.unique(flat).size != flat.size:
        findings.append(Finding(
            "bind/instance-disjoint", "maps",
            f"bound instances share machine ranks "
            f"({flat.size - int(np.unique(flat).size)} duplicate entries "
            f"across {binding.instances} instance(s)); instance charges "
            f"would not commute"))
    if flat.size:
        lo, hi = int(flat.min()), int(flat.max())
        if lo < 0 or (machine_ranks is not None and hi >= machine_ranks):
            bound = f"[0, {machine_ranks})" if machine_ranks is not None \
                else "[0, inf)"
            findings.append(Finding(
                "bind/rank-bounds", "maps",
                f"concrete ranks [{lo}, {hi}] fall outside the machine "
                f"rank space {bound}"))
        elif machine_ranks is not None and flat.size != machine_ranks:
            findings.append(Finding(
                "bind/machine-coverage", "maps",
                f"instances cover {flat.size} of {machine_ranks} machine "
                f"ranks; collapsed replay will scatter per instance "
                f"instead of installing lazy planes",
                severity=SEVERITY_WARNING))
    return findings


def require_verified(program: ChargeProgram,
                     subject: str = "program") -> ChargeProgram:
    """Raise :class:`VerificationError` unless *program* verifies clean.

    The gate form of :func:`verify_program`: capture-time verification
    and tests use it; warnings alone do not reject.
    """
    findings = verify_program(program)
    if has_errors(findings):
        raise VerificationError(findings, subject=subject)
    return program
