"""The repo-invariant source lint: project rules ruff cannot express.

An AST pass (``repro check --source``) over the repository's own source
enforcing invariants that are load-bearing for correctness here but
meaningless to a generic linter:

``lint/lock-discipline``
    In a class whose ``__init__`` creates ``self._lock``, every *public*
    method must mutate instance attributes only inside ``with
    self._lock`` -- the shared-state race heuristic for the types the
    serve layer drives from N worker threads
    (:class:`~repro.obs.metrics.MetricsRegistry`,
    :class:`~repro.serve.cache.LRUPlanCache`,
    :class:`~repro.plan.planner.ProgramMemo`, ...).  Underscore-prefixed
    helpers are exempt (the repository's caller-holds-the-lock
    convention), as is ``__init__`` (no concurrent aliases yet).

``lint/solver-count-fields``
    Every registered :class:`~repro.engine.registry.Solver` subclass
    (recognized by a class-level ``name = "..."`` under a ``*Solver``
    base) must *explicitly* declare ``count_machine_fields`` -- the
    lattice planner prices one count block per distinct declared-field
    value, so an accidentally inherited declaration silently mis-shares
    screens across machines.

``lint/deprecated-warns``
    A function whose docstring says it is deprecated must emit: its body
    must call :func:`repro.utils.deprecation.warn_deprecated` (or
    ``warnings.warn``).  Shims that document deprecation without warning
    never migrate their callers.

``lint/no-wallclock``
    No wall-clock reads (``time.time`` / ``perf_counter`` /
    ``monotonic`` / ``datetime.now`` ...) inside ``vmpi``, ``sched``, or
    ``costmodel`` -- the simulation core must be a pure function of its
    inputs, or captured programs and replayed reports stop being
    deterministic and cacheable.

All rules report as :class:`~repro.analysis.findings.Finding` with
``loc = "path:line"``, like every other ``repro check`` pass.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Iterable, List, Optional, Sequence, Set, Union

from repro.analysis.findings import Finding

#: Every lint rule with a one-line description (``repro check --rules``).
LINT_RULES = {
    "lint/parse-error": "source file parses as Python",
    "lint/lock-discipline": "attributes of a _lock-owning class are only mutated under `with self._lock` in public methods",
    "lint/solver-count-fields": "registered Solver subclasses explicitly declare count_machine_fields",
    "lint/deprecated-warns": "functions documented as deprecated call warn_deprecated/warnings.warn",
    "lint/no-wallclock": "no wall-clock reads inside vmpi/sched/costmodel",
}

#: Directories whose files must stay wall-clock-free (deterministic
#: simulation core: machine-state in, machine-state out).
WALLCLOCK_SCOPES = frozenset({"vmpi", "sched", "costmodel"})

_TIME_ATTRS = frozenset({"time", "perf_counter", "monotonic", "process_time",
                         "time_ns", "perf_counter_ns", "monotonic_ns",
                         "process_time_ns"})
_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

_DEPRECATED_RE = re.compile(r"\bdeprecated\b", re.IGNORECASE)

_FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _loc(path: str, node: ast.AST) -> str:
    return f"{path}:{getattr(node, 'lineno', 0)}"


def _terminal_name(node: ast.expr) -> Optional[str]:
    """The base identifier of a dotted expression (``time.x`` -> ``time``)."""
    while isinstance(node, ast.Attribute):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _is_self_attr(node: ast.expr, attr: Optional[str] = None) -> bool:
    return (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name) and node.value.id == "self"
            and (attr is None or node.attr == attr))


# -- lint/no-wallclock ------------------------------------------------------------


def _in_wallclock_scope(path: str) -> bool:
    parts = set(os.path.normpath(path).split(os.sep))
    return bool(parts & WALLCLOCK_SCOPES)


def _lint_wallclock(tree: ast.Module, path: str) -> List[Finding]:
    findings = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)):
            continue
        attr = node.func.attr
        base = _terminal_name(node.func.value)
        hit = ((attr in _TIME_ATTRS and base == "time")
               or (attr in _DATETIME_ATTRS and base == "datetime"))
        if hit:
            findings.append(Finding(
                "lint/no-wallclock", _loc(path, node),
                f"wall-clock call {base}.{attr}() in the deterministic "
                f"simulation core; thread timestamps in from the caller"))
    return findings


# -- lint/lock-discipline ---------------------------------------------------------


def _assigned_self_attrs(node: ast.AST) -> Iterable[ast.Attribute]:
    """``self.X`` attributes a statement stores into (assign/augassign/del)."""
    targets: List[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    elif isinstance(node, ast.Delete):
        targets = list(node.targets)
    for target in targets:
        # Unpack tuple targets; reach through subscripts (self.d[k] = v
        # mutates self.d just as directly as self.d = v).
        stack = [target]
        while stack:
            t = stack.pop()
            if isinstance(t, (ast.Tuple, ast.List)):
                stack.extend(t.elts)
            elif isinstance(t, ast.Subscript):
                stack.append(t.value)
            elif _is_self_attr(t):
                yield t


def _with_holds_lock(node: ast.With) -> bool:
    return any(_is_self_attr(item.context_expr, "_lock")
               for item in node.items)


def _check_lock_method(method: _FuncDef, path: str,
                       findings: List[Finding]) -> None:
    def visit(stmts: Sequence[ast.stmt], locked: bool) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue  # nested scopes bind their own self
            if not locked:
                for attr in _assigned_self_attrs(stmt):
                    if attr.attr != "_lock":
                        findings.append(Finding(
                            "lint/lock-discipline", _loc(path, stmt),
                            f"self.{attr.attr} mutated outside `with "
                            f"self._lock` in public method "
                            f"{method.name}() of a lock-owning class"))
            inner = locked or (isinstance(stmt, ast.With)
                               and _with_holds_lock(stmt))
            for field in ("body", "orelse", "finalbody", "handlers"):
                children = getattr(stmt, field, None)
                if not children:
                    continue
                for child in children:
                    if isinstance(child, ast.ExceptHandler):
                        visit(child.body, inner)
                visit([c for c in children if isinstance(c, ast.stmt)], inner)

    visit(method.body, locked=False)


def _owns_lock(cls: ast.ClassDef) -> bool:
    for item in cls.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and item.name == "__init__":
            return any(any(_is_self_attr(a, "_lock")
                           for a in _assigned_self_attrs(stmt))
                       for stmt in ast.walk(item)
                       if isinstance(stmt, ast.stmt))
    return False


def _lint_lock_discipline(tree: ast.Module, path: str) -> List[Finding]:
    findings: List[Finding] = []
    for cls in ast.walk(tree):
        if not isinstance(cls, ast.ClassDef) or not _owns_lock(cls):
            continue
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name.startswith("_"):
                continue  # __init__, dunders, caller-holds-lock helpers
            _check_lock_method(item, path, findings)
    return findings


# -- lint/solver-count-fields -----------------------------------------------------


def _class_assign_names(cls: ast.ClassDef) -> Set[str]:
    names: Set[str] = set()
    for item in cls.body:
        if isinstance(item, ast.Assign):
            names.update(t.id for t in item.targets
                         if isinstance(t, ast.Name))
        elif isinstance(item, ast.AnnAssign) and item.value is not None \
                and isinstance(item.target, ast.Name):
            names.add(item.target.id)
    return names


def _is_registered_solver(cls: ast.ClassDef) -> bool:
    if not any((isinstance(b, ast.Name) and b.id.endswith("Solver"))
               or (isinstance(b, ast.Attribute)
                   and b.attr.endswith("Solver"))
               for b in cls.bases):
        return False
    return any(
        isinstance(item, ast.Assign)
        and any(isinstance(t, ast.Name) and t.id == "name"
                for t in item.targets)
        and isinstance(item.value, ast.Constant)
        and isinstance(item.value.value, str)
        for item in cls.body)


def _lint_solver_declarations(tree: ast.Module, path: str) -> List[Finding]:
    findings = []
    for cls in ast.walk(tree):
        if isinstance(cls, ast.ClassDef) and _is_registered_solver(cls) \
                and "count_machine_fields" not in _class_assign_names(cls):
            findings.append(Finding(
                "lint/solver-count-fields", _loc(path, cls),
                f"registered solver {cls.name} does not declare "
                f"count_machine_fields; the lattice planner's "
                f"count-block sharing needs an explicit declaration, "
                f"not an inherited one"))
    return findings


# -- lint/deprecated-warns --------------------------------------------------------


def _emits_warning(func: _FuncDef) -> bool:
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        callee = node.func
        if isinstance(callee, ast.Name) and callee.id == "warn_deprecated":
            return True
        if isinstance(callee, ast.Attribute) \
                and callee.attr in ("warn", "warn_deprecated"):
            return True
    return False


def _lint_deprecated(tree: ast.Module, path: str) -> List[Finding]:
    findings = []
    for func in ast.walk(tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        doc = ast.get_docstring(func)
        if doc and _DEPRECATED_RE.search(doc) and not _emits_warning(func):
            findings.append(Finding(
                "lint/deprecated-warns", _loc(path, func),
                f"{func.name}() documents itself as deprecated but never "
                f"calls warn_deprecated()/warnings.warn()"))
    return findings


# -- entry points -----------------------------------------------------------------


def lint_source(source: str, path: str) -> List[Finding]:
    """Lint one file's *source* text; *path* scopes path-dependent rules."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding("lint/parse-error", f"{path}:{exc.lineno or 0}",
                        str(exc.msg))]
    findings = _lint_lock_discipline(tree, path)
    findings += _lint_solver_declarations(tree, path)
    findings += _lint_deprecated(tree, path)
    if _in_wallclock_scope(path):
        findings += _lint_wallclock(tree, path)
    return findings


def lint_file(path: str) -> List[Finding]:
    with open(path, "r", encoding="utf-8") as fh:
        return lint_source(fh.read(), path)


def lint_paths(paths: Sequence[str]) -> List[Finding]:
    """Lint every ``*.py`` file under *paths* (files or directories)."""
    findings: List[Finding] = []
    for root in paths:
        if os.path.isfile(root):
            findings.extend(lint_file(root))
            continue
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(d for d in dirnames
                                 if d != "__pycache__")
            for name in sorted(filenames):
                if name.endswith(".py"):
                    findings.extend(lint_file(os.path.join(dirpath, name)))
    return findings
