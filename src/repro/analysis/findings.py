"""Structured findings: the one result type every analysis pass emits.

The verifier (:mod:`repro.analysis.verifier`), the cost-envelope pass
(:mod:`repro.analysis.envelope` reports through it only on failure), the
source lint (:mod:`repro.analysis.lint`), the typing gate
(:mod:`repro.analysis.typegate`), and the cache sweep
(:mod:`repro.analysis.check`) all answer with ``List[Finding]`` -- a
``(rule, loc, message, severity)`` record -- so one table/JSON renderer
serves every ``repro check`` mode, exactly like the rest of the CLI.

Severities
----------
``error``
    The artifact is unsound: a program that would replay garbage, a
    source file violating a repository invariant.  ``repro check`` exits
    non-zero.
``warning``
    Suspicious but not unsound (a dead phase nothing references).
    Also exits non-zero -- a clean tree has zero findings -- but callers
    filtering programmatically (cache loads) only reject on errors.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Sequence

#: Finding severities, mildest last.
SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"
SEVERITIES = (SEVERITY_ERROR, SEVERITY_WARNING)


@dataclass(frozen=True)
class Finding:
    """One analysis result: which rule fired, where, and why.

    ``loc`` is a human-oriented locator: ``"op[17]"`` for an IR op,
    ``"phases[3]"`` for a phase-table slot, ``"src/repro/x.py:42"`` for
    a source line, ``"<key>.prog.pkl"`` for a cache entry.
    """

    rule: str
    loc: str
    message: str
    severity: str = SEVERITY_ERROR

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}")

    def to_dict(self) -> dict:
        """JSON-able form (the ``repro check --json`` schema)."""
        return dataclasses.asdict(self)

    def __str__(self) -> str:
        return f"[{self.severity}] {self.rule} @ {self.loc}: {self.message}"


class VerificationError(ValueError):
    """A verification gate rejected an artifact; carries the findings."""

    def __init__(self, findings: Sequence[Finding], subject: str = "program"):
        self.findings = list(findings)
        lines = "\n".join(f"  {f}" for f in self.findings)
        super().__init__(
            f"{subject} failed static verification "
            f"({len(self.findings)} finding(s)):\n{lines}")


def has_errors(findings: Sequence[Finding]) -> bool:
    """Whether any finding is severity ``error`` (the reject threshold)."""
    return any(f.severity == SEVERITY_ERROR for f in findings)


def findings_table(findings: Sequence[Finding], title: str = "findings") -> str:
    """The findings as an aligned text table (the CLI's house style)."""
    if not findings:
        return f"{title}: none"
    rows = [(f.severity, f.rule, f.loc, f.message) for f in findings]
    headers = ("severity", "rule", "loc", "message")
    widths = [max(len(headers[i]), *(len(r[i]) for r in rows))
              for i in range(len(headers))]
    lines = [title,
             "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
             "  ".join("-" * w for w in widths)]
    for row in rows:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)


def sort_findings(findings: Sequence[Finding]) -> List[Finding]:
    """Errors first, then by (rule, loc) -- a stable, readable order."""
    return sorted(findings,
                  key=lambda f: (SEVERITIES.index(f.severity), f.rule, f.loc))
