"""Static cost envelopes: O(ops) time bounds without replaying a program.

Replay simulates BSP clock semantics -- collectives synchronize their
group to the group maximum before charging -- so the exact critical path
needs the full simulation.  But two rigorous bounds need none of it:

* **Lower bound.**  Synchronization only ever *raises* a clock, and
  float addition is monotone (``a >= b`` implies ``fl(a + s) >= fl(b +
  s)``), so each rank's final clock is at least its own charges
  accumulated in op order with no waits.  The maximum over ranks of that
  per-rank priced sum is a true lower bound on the replayed critical
  path -- bit-rigorous, not just mathematically.

* **Upper bound.**  A synchronize-then-charge op advances the global
  maximum clock by at most its own priced step (the synchronized value
  cannot exceed the pre-op maximum, and barriers add nothing), so the
  priced steps of all ops accumulated in op order bound the critical
  path from above.

Both accumulate the *identical* float expressions the virtual machine
uses per charge (``alpha * messages + beta * words``, ``flops * gamma``),
so the bracket holds at the bit level, not merely approximately -- the
property the test suite asserts against exact replay.  The pass is a
cheap cross-check between the planner's analytic screen and its exact
refinement: a refined time outside its program's envelope means the
program and the run it claims to compile have diverged.

Per-phase count sums ride along for free: the envelope reports the total
``(messages, words, flops)`` ledger mass each phase would accumulate
under replay, summed statically over ops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.costmodel.params import MachineSpec
from repro.sched.program import OP_COMM, OP_FLOPS, ChargeProgram


@dataclass(frozen=True)
class CostEnvelope:
    """Static time bounds (seconds) and per-phase count totals."""

    #: Max over template ranks of the rank's own priced charges: a
    #: rigorous lower bound on the replayed critical path.
    lower_seconds: float
    #: Sum over ops of the op's priced step: a rigorous upper bound.
    upper_seconds: float
    #: Ops in the program (barriers included).
    num_ops: int
    #: Per-phase ``(messages, words, flops)`` totals summed over every
    #: rank the phase charges -- the static ledger mass.
    phase_counts: Dict[str, Tuple[float, float, float]]

    def brackets(self, seconds: float) -> bool:
        """Whether an exact replayed critical path sits inside the envelope."""
        return self.lower_seconds <= seconds <= self.upper_seconds


def cost_envelope(program: ChargeProgram,
                  machine: MachineSpec) -> CostEnvelope:
    """Price *program*'s counts under *machine* into a :class:`CostEnvelope`.

    One pass over the ops; no :class:`~repro.vmpi.machine.VirtualMachine`
    is constructed.  Priced steps use the exact per-charge expressions of
    the machine's charging internals, so the bounds bracket replay bit
    for bit.
    """
    params = machine.cost_params()
    per_rank = np.zeros(max(program.num_ranks, 0))
    upper = 0.0
    # (messages, words, flops) accumulator per phase-table slot.
    phase_mass = np.zeros((3, len(program.phases)))
    for op in program.ops:
        if op.kind == OP_FLOPS:
            # Identical expression to VirtualMachine._charge_flops_group_id.
            step = op.payload * params.gamma
            per_rank[op.ranks] += step
            phase_mass[2, op.phase] += op.payload * op.ranks.size
        elif op.kind == OP_COMM:
            cost = op.payload
            # Identical expression to VirtualMachine._charge_comm_groups_id.
            step = params.alpha * cost.messages + params.beta * cost.words
            per_rank[op.ranks.reshape(-1)] += step
            phase_mass[0, op.phase] += cost.messages * op.ranks.size
            phase_mass[1, op.phase] += cost.words * op.ranks.size
        else:
            continue  # barriers synchronize; they never add cost
        upper += step
    lower = float(per_rank.max()) if per_rank.size else 0.0
    counts = {name: (float(phase_mass[0, i]), float(phase_mass[1, i]),
                     float(phase_mass[2, i]))
              for i, name in enumerate(program.phases)}
    return CostEnvelope(lower_seconds=lower, upper_seconds=float(upper),
                        num_ops=len(program.ops), phase_counts=counts)
