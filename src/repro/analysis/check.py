"""The cache sweep: statically verify every entry of the on-disk caches.

The serving layer shares three pickle-per-entry caches between N
workers: the engine's result cache (``*.pkl`` ->
:class:`~repro.engine.result.QRRun`), the planner's plan cache
(``*.plan.pkl`` -> :class:`~repro.plan.planner.PlanResult`), and the
Schedule IR's program cache (``*.prog.pkl`` ->
:class:`~repro.sched.program.ChargeProgram`).  The load path already
treats *unreadable* entries as misses; this sweep goes further and
reports them -- plus entries that unpickle fine but are **semantically
invalid** (a corrupt program that would replay garbage, a plan result
with the wrong shape) -- so an operator can audit a shared cache
directory before N clients trust it, not after.

``repro check`` runs this sweep by default; every problem is a
:class:`~repro.analysis.findings.Finding` whose ``loc`` is the entry
filename, so the output composes with the source lint and typing gate.
"""

from __future__ import annotations

import os
import pickle
from typing import Callable, List, Optional

from repro.analysis.findings import Finding
from repro.analysis.verifier import verify_program

#: Sweep rules with one-line descriptions (``repro check --rules``).
CACHE_RULES = {
    "cache/unreadable": "cache entries unpickle (torn/partial entries are reported, loads already treat them as misses)",
    "cache/wrong-type": "cache entries hold the cache's value type",
    "plan/structure": "plan-cache entries are structurally valid PlanResults",
}


def verify_plan_result(result: object) -> List[Finding]:
    """Structural validation of an (untrusted) unpickled plan-cache entry.

    Cheap by design -- O(plans), attribute/type checks only: the goal is
    rejecting version-skewed or corrupted entries before they reach a
    serving worker, not re-ranking the plans.
    """
    from repro.plan.planner import Plan, PlanResult
    from repro.plan.problem import ProblemSpec

    if not isinstance(result, PlanResult):
        return [Finding("plan/structure", "entry",
                        f"expected a PlanResult, got "
                        f"{type(result).__name__}")]
    findings: List[Finding] = []
    if not isinstance(result.problem, ProblemSpec):
        findings.append(Finding(
            "plan/structure", "problem",
            f"problem must be a ProblemSpec, got "
            f"{type(result.problem).__name__}"))
    if not isinstance(result.plans, list):
        findings.append(Finding(
            "plan/structure", "plans",
            f"plans must be a list, got {type(result.plans).__name__}"))
    else:
        for i, plan in enumerate(result.plans):
            if not isinstance(plan, Plan):
                findings.append(Finding(
                    "plan/structure", f"plans[{i}]",
                    f"expected a Plan, got {type(plan).__name__}"))
            elif not isinstance(plan.spec_fields, dict):
                findings.append(Finding(
                    "plan/structure", f"plans[{i}].spec_fields",
                    f"spec_fields must be a dict, got "
                    f"{type(plan.spec_fields).__name__}"))
    count = result.num_candidates
    if not isinstance(count, int) or isinstance(count, bool) or count < 0 \
            or (isinstance(result.plans, list)
                and count < len(result.plans)):
        findings.append(Finding(
            "plan/structure", "num_candidates",
            f"num_candidates must be an int >= len(plans), got "
            f"{count!r}"))
    return findings


def _sweep(cache_dir: str, suffix: str, value_type: Optional[type],
           semantic: Optional[Callable[[object], List[Finding]]] = None,
           exclude: tuple = (),
           ) -> List[Finding]:
    """Verify every ``*suffix`` entry in *cache_dir* (missing dir = clean).

    ``exclude`` filters out longer suffixes that also end in *suffix* --
    the result cache's plain ``.pkl`` namespace must not claim
    ``.plan.pkl`` / ``.prog.pkl`` entries when caches share a directory.
    """
    findings: List[Finding] = []
    try:
        with os.scandir(cache_dir) as it:
            names = sorted(e.name for e in it
                           if e.is_file() and e.name.endswith(suffix)
                           and not e.name.endswith(exclude))
    except FileNotFoundError:
        return findings
    for name in names:
        path = os.path.join(cache_dir, name)
        try:
            with open(path, "rb") as fh:
                value = pickle.load(fh)
        except Exception as exc:
            findings.append(Finding(
                "cache/unreadable", name,
                f"entry does not unpickle ({type(exc).__name__}: {exc}); "
                f"loads treat it as a miss"))
            continue
        if value_type is not None and not isinstance(value, value_type):
            findings.append(Finding(
                "cache/wrong-type", name,
                f"expected {value_type.__name__}, got "
                f"{type(value).__name__}"))
            continue
        if semantic is not None:
            for f in semantic(value):
                findings.append(Finding(f.rule, f"{name}:{f.loc}",
                                        f.message, severity=f.severity))
    return findings


def check_sched_cache(cache_dir: str) -> List[Finding]:
    """Verify every compiled program in a program-cache directory."""
    from repro.sched.program import ChargeProgram

    return _sweep(cache_dir, ".prog.pkl", ChargeProgram, verify_program)


def check_plan_cache(cache_dir: str) -> List[Finding]:
    """Verify every plan result in a plan-cache directory."""
    return _sweep(cache_dir, ".plan.pkl", None, verify_plan_result)


def check_result_cache(cache_dir: str) -> List[Finding]:
    """Verify every engine result in a result-cache directory."""
    from repro.engine.result import QRRun

    return _sweep(cache_dir, ".pkl", QRRun,
                  exclude=(".plan.pkl", ".prog.pkl", ".tmp"))


def check_caches(result_dir: Optional[str] = None,
                 plan_dir: Optional[str] = None,
                 sched_dir: Optional[str] = None) -> List[Finding]:
    """Sweep all three session caches (defaults honor the env overrides)."""
    from repro.engine import default_cache_dir
    from repro.plan import default_plan_cache_dir
    from repro.sched import default_sched_cache_dir

    findings = check_result_cache(result_dir or default_cache_dir())
    findings += check_plan_cache(plan_dir or default_plan_cache_dir())
    findings += check_sched_cache(sched_dir or default_sched_cache_dir())
    return findings
