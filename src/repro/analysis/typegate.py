"""The typing gate: run mypy over the typed-module allowlist.

The repository ships inline types and a ``py.typed`` marker; full
strictness everywhere would be a rewrite, so the gate is an *allowlist*:
``mypy.ini`` pins a strict-ish configuration over the modules whose
types are load-bearing (``repro.utils``, ``repro.obs``, ``repro.sched``
to start -- the cache contract, the metrics registry, and the IR the
verifier reasons about), and new modules graduate into it as they are
annotated.

mypy itself is a CI dependency, not a runtime one: when it is not
importable the gate reports *skipped* (``run_typegate`` returns
``None``) instead of failing, so ``repro check --typing`` degrades
gracefully on minimal installs while the CI ``check`` job enforces it.
"""

from __future__ import annotations

import importlib.util
import os
import re
import subprocess
import sys
from typing import List, Optional

from repro.analysis.findings import Finding

#: Default config file (repo root); carries the files= allowlist.
DEFAULT_CONFIG = "mypy.ini"

#: ``path:line: severity: message  [code]`` -- mypy's default output.
_MYPY_LINE = re.compile(
    r"^(?P<path>[^:\n]+):(?P<line>\d+):(?:\d+:)?\s*"
    r"(?P<severity>error|warning|note):\s*(?P<message>.*?)"
    r"(?:\s+\[(?P<code>[\w-]+)\])?$")


def mypy_available() -> bool:
    """Whether mypy is importable in this interpreter."""
    return importlib.util.find_spec("mypy") is not None


def run_typegate(config: str = DEFAULT_CONFIG,
                 cwd: Optional[str] = None) -> Optional[List[Finding]]:
    """Run mypy under *config*; findings, or ``None`` when mypy is absent.

    Notes are folded into their preceding error in spirit by simply being
    dropped -- the error line carries the location and code the gate
    reports on.
    """
    if not mypy_available():
        return None
    if not os.path.isfile(os.path.join(cwd or os.getcwd(), config)):
        return [Finding("type/config", config,
                        f"typing-gate config {config!r} not found")]
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", config,
         "--no-error-summary", "--no-color-output"],
        capture_output=True, text=True, cwd=cwd)
    findings: List[Finding] = []
    for line in proc.stdout.splitlines():
        match = _MYPY_LINE.match(line.strip())
        if not match or match.group("severity") == "note":
            continue
        code = match.group("code") or "misc"
        findings.append(Finding(
            f"type/{code}", f"{match.group('path')}:{match.group('line')}",
            match.group("message"),
            severity=match.group("severity")))
    if proc.returncode not in (0, 1) and not findings:
        # mypy crashed (usage error, internal error): surface it rather
        # than reporting a silently-green gate.
        detail = (proc.stderr or proc.stdout).strip().splitlines()
        findings.append(Finding(
            "type/mypy-failed", config,
            detail[-1] if detail else f"mypy exited {proc.returncode}"))
    return findings
