"""repro.Session: one ambient context behind every surface.

Every subsystem in the repository answers the same serving-style
question -- "given this matrix, this processor budget, and this machine,
what should run and what does it cost?" -- but the engine, the planner,
the study layer, and the CLI each used to re-thread ``machine=``,
``cache_dir=``, parallelism, and objective keywords independently.  A
:class:`Session` carries that context once and propagates it through
every call, the way a real serving client would::

    from repro import Budget, MatrixSpec, Objective, RunSpec, Session

    session = Session(machine="stampede2",
                      result_cache=".repro-cache",
                      plan_cache=".repro-plan-cache",
                      objective=Objective.parse("time=1,memory=0.2"))

    run = session.factor(a, algorithm="auto", procs=256)   # planner-backed
    result = session.plan(m=2**22, n=512, procs=4096)      # ranked plans
    best = session.plan(m=2**22, n=512, procs=4096,
                        objective=Objective.single(
                            "time", budgets=(Budget("memory", 8e6),)))
    table = session.study({"kind": "executed", "m": 2048, "n": 32,
                           "procs": [4, 8, 16]})

The session's context follows the work everywhere: ``algorithm="auto"``
specs resolve through the session's plan cache *and* objective, batch
runs ship a picklable :class:`SessionConfig` into every worker process
(a worker resolving an auto spec sees the same planner the parent
would), and studies stream through the session's result cache and
executor.

A module-level **default session** backs every pre-existing free
function -- :func:`repro.engine.run` / ``run_batch`` / ``run_iter``,
the :mod:`repro.api` wrappers, :class:`repro.plan.Planner`,
:meth:`repro.study.Study.run` -- as byte-identical shims, so existing
code keeps working unchanged while new code talks to one object.  The
default session honors the ``REPRO_CACHE_DIR`` / ``REPRO_PLAN_CACHE_DIR``
/ ``REPRO_SCHED_CACHE_DIR`` environment variables for its cache locations
(the last backs the planner's compiled-program cache; see
:mod:`repro.sched`).
"""

from __future__ import annotations

import concurrent.futures
import contextlib
import os
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.costmodel.params import MachineSpec
from repro.engine.result import QRRun
from repro.engine.spec import MatrixSpec, RunSpec, fingerprint
from repro.utils.config import (
    UNSET,
    _Unset,
    env_plan_cache_dir,
    env_result_cache_dir,
    env_sched_cache_dir,
)
from repro.utils.validation import require


@dataclass(frozen=True)
class ExecutorConfig:
    """How a session fans batch work out: process parallelism + pool size."""

    parallel: bool = True
    max_workers: Optional[int] = None

    @classmethod
    def coerce(cls, value) -> "ExecutorConfig":
        """Normalize the accepted ``executor=`` spellings.

        ``None`` (defaults), an :class:`ExecutorConfig`, ``"serial"`` /
        ``"process"``, a bool (parallel on/off), or an integer worker
        count.
        """
        if value is None:
            return cls()
        if isinstance(value, ExecutorConfig):
            return value
        if isinstance(value, str):
            require(value in ("serial", "process"),
                    f'executor must be "serial", "process", a worker count, '
                    f"or an ExecutorConfig, got {value!r}")
            return cls(parallel=(value == "process"))
        if isinstance(value, bool):
            # Before the int branch: True/False mean parallel on/off, not
            # a worker count of 1.
            return cls(parallel=value)
        if isinstance(value, int):
            require(value > 0, f"executor worker count must be > 0, got {value}")
            return cls(parallel=(value > 1), max_workers=value)
        raise ValueError(f"cannot interpret {value!r} as an executor")


@dataclass(frozen=True)
class SessionConfig:
    """The picklable essence of a session, shipped into worker processes.

    Everything a worker needs to reproduce the parent session's context
    -- machine default, cache locations, planning objective -- without
    carrying live handles.  ``Session.from_config`` rebuilds a session
    from it on the other side of a pickle.
    """

    machine: Union[None, str, MachineSpec] = None
    result_cache: Optional[str] = None
    plan_cache: Optional[str] = None
    sched_cache: Optional[str] = None
    objective: Optional["Objective"] = None  # noqa: F821 - see repro.plan
    parallel: bool = True
    max_workers: Optional[int] = None


class Session:
    """One stateful entry point over the engine, planner, and study layers.

    Parameters
    ----------
    machine:
        Default machine preset name or :class:`MachineSpec` for
        convenience calls (:meth:`factor`, :meth:`plan`).  ``None``
        keeps each layer's own default (``"abstract"`` for runs,
        ``"stampede2"`` for planning).
    result_cache:
        Directory of the fingerprint-keyed on-disk result cache used by
        :meth:`run_iter` / :meth:`run_batch` / :meth:`study`.  ``None``
        disables result caching; unset falls back to the
        ``REPRO_CACHE_DIR`` environment variable (no caching when that
        is unset too).
    plan_cache:
        Directory of the on-disk plan cache used by :meth:`plan` and by
        ``algorithm="auto"`` resolution.  Same ``None`` / environment
        (``REPRO_PLAN_CACHE_DIR``) semantics.
    sched_cache:
        Directory of the compiled-program cache
        (:class:`repro.sched.ProgramCache`) the planner's refinement
        stage captures into and replays from.  Same ``None`` /
        environment (``REPRO_SCHED_CACHE_DIR``) semantics.
    executor:
        Batch-execution policy: ``"serial"``, ``"process"``, a worker
        count, or an :class:`ExecutorConfig`.
    objective:
        The session's planning objective -- a metric name, a weight
        string (``"time=1,memory=0.2"``), a weights mapping, or a full
        :class:`~repro.plan.objective.Objective` with budgets.  Honored
        by :meth:`plan` and by every ``algorithm="auto"`` resolution
        made under this session.  ``None`` means pure modeled time.
    obs:
        An :class:`~repro.obs.Observer` threaded through every layer the
        session touches -- planners built by :meth:`planner` emit their
        span trees into it, studies run under it, and a
        :class:`~repro.serve.PlanServer` built on this session adopts it
        for per-request spans.  A live handle, deliberately *not* part
        of :class:`SessionConfig`: worker processes rebuild sessions
        without it (sinks do not pickle), and observation never changes
        any result.  ``None`` (default) costs nothing.
    """

    def __init__(self, *, machine: Union[None, str, MachineSpec] = None,
                 result_cache: Union[_Unset, None, str] = UNSET,
                 plan_cache: Union[_Unset, None, str] = UNSET,
                 sched_cache: Union[_Unset, None, str] = UNSET,
                 executor=None, objective=None, obs=None):
        from repro.plan.objective import Objective

        if isinstance(result_cache, _Unset):
            result_cache = env_result_cache_dir()
        if isinstance(plan_cache, _Unset):
            plan_cache = env_plan_cache_dir()
        if isinstance(sched_cache, _Unset):
            sched_cache = env_sched_cache_dir()
        self.machine = machine
        self.result_cache = result_cache
        self.plan_cache = plan_cache
        self.sched_cache = sched_cache
        self.executor = ExecutorConfig.coerce(executor)
        self.objective = (Objective.coerce(objective)
                          if objective is not None else None)
        self.obs = obs

    # -- config / pickling --------------------------------------------------------

    @property
    def config(self) -> SessionConfig:
        """This session's context as a picklable :class:`SessionConfig`."""
        return SessionConfig(machine=self.machine,
                             result_cache=self.result_cache,
                             plan_cache=self.plan_cache,
                             sched_cache=self.sched_cache,
                             objective=self.objective,
                             parallel=self.executor.parallel,
                             max_workers=self.executor.max_workers)

    @classmethod
    def from_config(cls, config: SessionConfig) -> "Session":
        """Rebuild a session from a (possibly unpickled) config."""
        return cls(machine=config.machine,
                   result_cache=config.result_cache,
                   plan_cache=config.plan_cache,
                   sched_cache=config.sched_cache,
                   executor=ExecutorConfig(parallel=config.parallel,
                                           max_workers=config.max_workers),
                   objective=config.objective)

    def __repr__(self) -> str:
        parts = []
        if self.machine is not None:
            name = (self.machine.name if isinstance(self.machine, MachineSpec)
                    else self.machine)
            parts.append(f"machine={name!r}")
        if self.result_cache:
            parts.append(f"result_cache={self.result_cache!r}")
        if self.plan_cache:
            parts.append(f"plan_cache={self.plan_cache!r}")
        if self.sched_cache:
            parts.append(f"sched_cache={self.sched_cache!r}")
        if self.objective is not None:
            parts.append(f"objective={str(self.objective)!r}")
        if self.executor != ExecutorConfig():
            parts.append(f"executor={self.executor}")
        return f"Session({', '.join(parts)})"

    # -- spec resolution ----------------------------------------------------------

    def resolve(self, spec: RunSpec) -> RunSpec:
        """Resolve ``algorithm="auto"`` / ``grid="auto"`` under this session.

        The planner search runs with the session's plan cache and
        objective; concrete specs pass through untouched.
        """
        if spec.algorithm == "auto" or spec.grid == "auto":
            from repro.plan import resolve_auto_spec

            return resolve_auto_spec(spec, cache_dir=self.plan_cache,
                                     objective=self.objective)
        return spec

    def spec_key(self, spec: RunSpec) -> str:
        """Result-cache key of a spec: fingerprint of its prepared form.

        Auto specs hash as the concrete configuration this session's
        planner resolves them to.
        """
        return self._prepared_fingerprint(self.resolve(spec))

    @staticmethod
    def _prepared_fingerprint(spec: RunSpec) -> str:
        """Fingerprint an already-resolved (concrete) spec."""
        from repro.engine.registry import solver_for

        solver = solver_for(spec.algorithm)
        return fingerprint(solver.prepare(spec), solver.name)

    # -- single runs --------------------------------------------------------------

    def run(self, spec: RunSpec) -> QRRun:
        """Execute one :class:`RunSpec` under this session's context."""
        from repro.engine.runner import _execute

        return _execute(self.resolve(spec), trace=False)[0]

    def trace(self, spec: RunSpec):
        """Execute one spec on a tracing machine; return ``(QRRun, vm)``.

        The session-level doorway to :func:`repro.engine.run_traced`:
        the returned :class:`~repro.vmpi.machine.VirtualMachine` carries
        the recorded trace-event stream.
        """
        from repro.engine.runner import _execute

        return _execute(self.resolve(spec), trace=True)

    def factor(self, a, algorithm: str = "auto", *,
               machine: Union[None, str, MachineSpec] = None,
               **spec_fields) -> QRRun:
        """Factor one matrix: the session-level one-call API.

        ``a`` is a numpy array or a reproducible :class:`MatrixSpec`;
        ``algorithm`` defaults to ``"auto"`` (the session's planner and
        objective pick the configuration -- pass ``procs=``).  Grid
        fields (``c``/``d``/``pr``/``pc``/``block_size``/...) pass
        through to the :class:`RunSpec`.
        """
        if machine is None:
            machine = self.machine if self.machine is not None else "abstract"
        if isinstance(a, MatrixSpec):
            spec = RunSpec(algorithm=algorithm, matrix=a, machine=machine,
                           **spec_fields)
        else:
            spec = RunSpec(algorithm=algorithm, data=np.asarray(a),
                           machine=machine, **spec_fields)
        return self.run(spec)

    # -- batches ------------------------------------------------------------------

    def run_iter(self, specs: Iterable[RunSpec], *,
                 parallel: Optional[bool] = None,
                 max_workers: Optional[int] = None,
                 cache_dir: Union[_Unset, None, str] = UNSET,
                 progress: Optional[Callable[[int, int], None]] = None,
                 ) -> Iterator[Tuple[int, QRRun]]:
        """Execute many specs, yielding ``(spec_index, result)`` as each completes.

        The session's executor and result cache supply the defaults;
        uncached specs fan out over a process pool with the session's
        :class:`SessionConfig` shipped to every worker, so auto specs
        resolve under the same planner context in the workers as they
        would in the parent (serial fallback where pools are
        unavailable).  Cache hits are yielded first in spec order, then
        misses stream back in completion order.
        """
        from repro.engine.runner import _POOL_FALLBACK_ERRORS, ResultCache

        if parallel is None:
            parallel = self.executor.parallel
        if max_workers is None:
            max_workers = self.executor.max_workers
        if isinstance(cache_dir, _Unset):
            cache_dir = self.result_cache

        spec_list: List[RunSpec] = list(specs)
        total = len(spec_list)
        cache = ResultCache(cache_dir) if cache_dir else None
        done = 0

        keys: List[Optional[str]] = [None] * total
        misses: List[int] = []
        for i, spec in enumerate(spec_list):
            cached: Optional[QRRun] = None
            if cache is not None:
                # Resolve once here: the key needs the concrete spec
                # anyway, and submitting the resolved spec spares each
                # worker a duplicate planner screen.
                spec_list[i] = spec = self.resolve(spec)
                keys[i] = self._prepared_fingerprint(spec)
                cached = cache.load(keys[i])
            if cached is None:
                misses.append(i)
            else:
                done += 1
                if progress is not None:
                    progress(done, total)
                yield i, cached

        completed = set()

        def finish(i: int, result: QRRun) -> Tuple[int, QRRun]:
            nonlocal done
            if cache is not None:
                cache.store(keys[i], result)
            completed.add(i)
            done += 1
            if progress is not None:
                progress(done, total)
            return i, result

        workers = max_workers or min(len(misses), os.cpu_count() or 1)
        if parallel and len(misses) > 1 and workers > 1:
            config = self.config
            with contextlib.suppress(*_POOL_FALLBACK_ERRORS), \
                    concurrent.futures.ProcessPoolExecutor(workers) as pool:
                futures = {
                    pool.submit(_run_in_worker, config, spec_list[i]): i
                    for i in misses}
                for future in concurrent.futures.as_completed(futures):
                    i = futures[future]
                    try:
                        result = future.result()
                    except _POOL_FALLBACK_ERRORS:
                        break       # fall back to serial for the rest
                    yield finish(i, result)
        for i in misses:
            if i not in completed:
                yield finish(i, self.run(spec_list[i]))

    def run_batch(self, specs: Iterable[RunSpec], *,
                  parallel: Optional[bool] = None,
                  max_workers: Optional[int] = None,
                  cache_dir: Union[_Unset, None, str] = UNSET,
                  ) -> List[QRRun]:
        """Execute many specs, returning results in spec order."""
        spec_list: List[RunSpec] = list(specs)
        results: List[Optional[QRRun]] = [None] * len(spec_list)
        for i, result in self.run_iter(spec_list, parallel=parallel,
                                       max_workers=max_workers,
                                       cache_dir=cache_dir):
            results[i] = result
        return results  # type: ignore[return-value]

    # -- planning -----------------------------------------------------------------

    def planner(self, refine: Optional[str] = "symbolic"):
        """A :class:`repro.plan.Planner` bound to this session's context."""
        from repro.plan import Planner

        return Planner(refine=refine, cache_dir=self.plan_cache,
                       parallel=self.executor.parallel,
                       program_cache_dir=self.sched_cache,
                       obs=self.obs)

    def plan(self, problem=None, *, objective=None,
             refine: Optional[str] = "symbolic", **problem_fields):
        """Plan one problem point under the session's machine and objective.

        Pass the problem's fields directly (``m=``, ``n=``, ``procs=``,
        ...) and the session fills in its machine and objective
        defaults; ``objective=`` overrides the session objective for
        this one call.  A full :class:`~repro.plan.ProblemSpec` is taken
        **as-is** -- it is a complete question, so the session objective
        is *not* grafted onto it (only an explicit ``objective=``
        argument overrides its own); auto-spec resolution
        (:meth:`resolve`), by contrast, always plans under the session
        objective because a :class:`RunSpec` carries none of its own.
        """
        from repro.plan import Objective, ProblemSpec

        if objective is not None:
            objective = Objective.coerce(objective)
        if problem is None:
            problem_fields.setdefault(
                "machine",
                self.machine if self.machine is not None else "stampede2")
            if objective is not None:
                problem_fields["objective"] = objective
            elif self.objective is not None:
                problem_fields.setdefault("objective", self.objective)
            problem = ProblemSpec(**problem_fields)
        else:
            require(not problem_fields,
                    "pass either a ProblemSpec or its fields, not both")
            if objective is not None:
                problem = problem.replace(objective=objective)
        return self.planner(refine=refine).plan(problem)

    def plan_many(self, problems, *, refine: Optional[str] = "symbolic",
                  errors: str = "raise"):
        """Plan a whole campaign in one batched lattice search.

        ``problems`` is a sequence of :class:`~repro.plan.ProblemSpec`
        instances and/or field dicts; each dict gets the session's
        machine and objective defaults exactly as :meth:`plan` would
        apply them, while a full ``ProblemSpec`` is taken as-is.  The
        batch goes through :meth:`repro.plan.Planner.plan_many` --
        shared enumeration, one stacked pricing pass, deduplicated
        refinement -- returning per-point results bit-identical to
        calling :meth:`plan` in a loop.  ``errors="return"`` yields the
        per-point exception in place of its result instead of raising.
        """
        from repro.plan import ProblemSpec

        specs = []
        for item in problems:
            if isinstance(item, ProblemSpec):
                specs.append(item)
                continue
            require(isinstance(item, dict),
                    f"expected a ProblemSpec or its field dict, got {item!r}")
            fields = dict(item)
            fields.setdefault(
                "machine",
                self.machine if self.machine is not None else "stampede2")
            if self.objective is not None:
                fields.setdefault("objective", self.objective)
            specs.append(ProblemSpec(**fields))
        return self.planner(refine=refine).plan_many(specs, errors=errors)

    # -- studies ------------------------------------------------------------------

    def study(self, study, *, parallel: Optional[bool] = None,
              max_workers: Optional[int] = None,
              cache_dir: Union[_Unset, None, str] = UNSET,
              jsonl_path: Optional[str] = None, resume: bool = True,
              progress=None):
        """Run a :class:`repro.study.Study` (or its dict spec) under this session.

        Engine-backed points stream through :meth:`run_iter` with the
        session's executor, result cache, and auto-resolution context;
        returns the finalized :class:`~repro.study.ResultTable`.
        """
        from repro.study import Study, study_from_dict

        if isinstance(study, dict):
            study = study_from_dict(study)
        require(isinstance(study, Study),
                f"expected a Study or its dict spec, got {study!r}")
        # Unspecified parallel/cache_dir flow through the study into
        # this session's run_iter, which applies the executor policy and
        # result cache.
        return study.run(parallel=parallel, max_workers=max_workers,
                         cache_dir=cache_dir, jsonl_path=jsonl_path,
                         resume=resume, progress=progress, session=self)


def _run_in_worker(config: SessionConfig, spec: RunSpec) -> QRRun:
    """Pool-worker entry point: rebuild the session context, run one spec."""
    return Session.from_config(config).run(spec)


# -- the default session -----------------------------------------------------------

_default_session: Optional[Session] = None


def default_session() -> Session:
    """The module-level session backing every free-function shim.

    Created lazily on first use (reading the ``REPRO_CACHE_DIR`` /
    ``REPRO_PLAN_CACHE_DIR`` environment variables); replace it with
    :func:`set_default_session` or temporarily with :func:`use_session`.
    """
    global _default_session
    if _default_session is None:
        _default_session = Session()
    return _default_session


def set_default_session(session: Optional[Session]) -> None:
    """Install *session* as the process-wide default (``None`` resets)."""
    global _default_session
    require(session is None or isinstance(session, Session),
            f"expected a Session or None, got {session!r}")
    _default_session = session


@contextlib.contextmanager
def use_session(session: Session):
    """Temporarily make *session* the default within a ``with`` block.

    Every free-function shim (``repro.engine.run``, the ``repro.api``
    wrappers, study execution) dispatches through *session* inside the
    block; the previous default is restored on exit.
    """
    global _default_session
    previous = _default_session
    set_default_session(session)
    try:
        yield session
    finally:
        _default_session = previous
