"""Flop-count formulas, following the paper's conventions (Section II-A).

The paper charges:

* ``T_axpy(m, n)        = 2 m n``  (scaled add: one multiply + one add per entry)
* ``T_MM(m, n, k)       = 2 m n k``
* ``T_syrk(m, n)        = m n**2`` (symmetric rank-m update: half of a GEMM)
* ``T_Chol(n)           = (2/3) n**3``
* triangular inverse    = ``(1/3) n**3`` (so CholInv totals ``n**3``)
* TRSM with ``m`` right-hand rows against an ``n x n`` triangle = ``m n**2``
* Householder QR of ``m x n`` = ``2 m n**2 - (2/3) n**3`` (the flop count
  the paper divides by to compute Gigaflops/s for *both* algorithms)

Element-wise subtraction (Algorithm 3 line 10) is charged one flop per
entry.  These are model conventions, not hardware truths; what matters for
the reproduction is that the analytic cost functions, the executed ledger,
and the paper's Table I all use the same constants.
"""

from __future__ import annotations


#: Fraction of a dense GEMM's flops that a TRMM (dense x triangular) costs.
TRMM_FRACTION = 0.5

#: Fraction of a dense GEMM's flops that a triangular x triangular product
#: with triangular result costs (``n**3/3`` of ``2 n**3``).
TRI_TRI_FRACTION = 1.0 / 6.0


def axpy_flops(m: int, n: int) -> float:
    """Scaled elementwise add of two ``m x n`` matrices."""
    return 2.0 * m * n


def elementwise_flops(m: int, n: int) -> float:
    """Single-op elementwise map (subtraction, negation) of ``m x n``."""
    return float(m * n)


def mm_flops(m: int, n: int, k: int) -> float:
    """Dense multiply ``(m x k) @ (k x n)``."""
    return 2.0 * m * n * k


def syrk_flops(m: int, n: int) -> float:
    """Symmetric rank-``m`` update ``A.T @ A`` with ``A`` of shape ``m x n``."""
    return float(m) * n * n


def chol_flops(n: int) -> float:
    """Cholesky factorization of ``n x n``."""
    return (2.0 / 3.0) * n ** 3


def trinv_flops(n: int) -> float:
    """Inverse of an ``n x n`` triangular matrix."""
    return (1.0 / 3.0) * n ** 3


def cholinv_flops(n: int) -> float:
    """Cholesky + triangular inverse (Algorithm 2's base case work)."""
    return chol_flops(n) + trinv_flops(n)


def trsm_flops(m: int, n: int) -> float:
    """Triangular solve with an ``n x n`` triangle and ``m`` right-hand rows."""
    return float(m) * n * n


def householder_flops(m: int, n: int) -> float:
    """Householder QR of ``m x n`` (the paper's Gigaflops numerator)."""
    return 2.0 * m * n * n - (2.0 / 3.0) * n ** 3
