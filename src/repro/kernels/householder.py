"""Sequential Householder QR kernels.

Used in three places:

* the accuracy study compares CholeskyQR-family orthogonality against
  Householder QR (the gold standard the paper cites);
* the ScaLAPACK-like baseline factors gathered panels with it;
* the TSQR baseline factors local row blocks and tree-combined R-stacks.

``local_qr`` charges the paper's Householder flop count
``2 m n**2 - (2/3) n**3``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.kernels import flops as fl
from repro.utils.validation import require
from repro.vmpi.datatypes import Block, NumericBlock, SymbolicBlock


@dataclass
class CompactQR:
    """An explicit reduced QR pair (the library works with explicit Q).

    ScaLAPACK keeps Q implicit as Householder reflectors; our baselines
    materialize it because the CholeskyQR-family algorithms under study
    produce explicit Q and the comparison metrics need both in the same
    form.
    """

    q: Block
    r: Block


def local_qr(a: Block) -> Tuple[Block, Block, float]:
    """Reduced QR of an ``m x n`` block (``m >= n``): returns ``(Q, R, flops)``.

    The R factor's diagonal is made non-negative so results are unique and
    comparable across algorithms (LAPACK's sign convention is arbitrary).
    """
    m, n = a.shape
    require(m >= n, f"reduced QR needs m >= n, got {a.shape}")
    f = fl.householder_flops(m, n)
    if isinstance(a, SymbolicBlock):
        return SymbolicBlock((m, n)), SymbolicBlock((n, n)), f
    q, r = np.linalg.qr(a.data)  # type: ignore[union-attr]
    signs = np.sign(np.diag(r))
    signs[signs == 0] = 1.0
    q = q * signs[np.newaxis, :]
    r = r * signs[:, np.newaxis]
    return NumericBlock(q), NumericBlock(np.triu(r)), f


def apply_q_transpose(q: Block, c: Block) -> Tuple[Block, float]:
    """``W = Q.T @ C`` -- the trailing-update projection of blocked QR.

    Charged at the GEMM rate (the baselines apply explicit panel Q factors,
    so this really is a GEMM).
    """
    m, b = q.shape
    m2, n = c.shape
    require(m == m2, f"apply_q_transpose shape mismatch: {q.shape} vs {c.shape}")
    f = fl.mm_flops(b, n, m)
    if isinstance(q, SymbolicBlock):
        return SymbolicBlock((b, n)), f
    return NumericBlock(q.data.T @ c.data), f  # type: ignore[union-attr]
