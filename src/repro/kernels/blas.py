"""Local BLAS-like kernels over blocks: multiply, syrk, elementwise ops.

Every function returns ``(result_block, flops)``; the distributed caller
charges the flops to the owning rank.  Numeric blocks hit numpy's BLAS;
symbolic blocks propagate shapes only (the flop count is identical, which
is the whole point of the dual backend).
"""

from __future__ import annotations

from typing import Tuple

from repro.kernels import flops as fl
from repro.utils.validation import require
from repro.vmpi.datatypes import Block, NumericBlock, SymbolicBlock


def local_mm(a: Block, b: Block) -> Tuple[Block, float]:
    """``C = A @ B`` with ``2 m n k`` flops."""
    m, k = a.shape
    k2, n = b.shape
    require(k == k2, f"matmul shape mismatch: {a.shape} @ {b.shape}")
    return a.matmul(b), fl.mm_flops(m, n, k)


def local_mm_tn(a: Block, b: Block) -> Tuple[Block, float]:
    """``C = A.T @ B`` (transpose-first multiply, used by the Gram step)."""
    k, m = a.shape
    k2, n = b.shape
    require(k == k2, f"matmul(T, N) shape mismatch: {a.shape}.T @ {b.shape}")
    if isinstance(a, SymbolicBlock):
        return SymbolicBlock((m, n)), fl.mm_flops(m, n, k)
    return NumericBlock(a.data.T @ b.data), fl.mm_flops(m, n, k)  # type: ignore[union-attr]


def local_syrk(a: Block) -> Tuple[Block, float]:
    """``X = A.T @ A`` charged at the symmetric rate ``m n**2``.

    Numerically we form the full (symmetric) product; the flop charge uses
    the paper's ``T_syrk`` half-GEMM convention.
    """
    m, n = a.shape
    if isinstance(a, SymbolicBlock):
        return SymbolicBlock((n, n)), fl.syrk_flops(m, n)
    gram = a.data.T @ a.data  # type: ignore[union-attr]
    # Enforce exact symmetry; BLAS GEMM round-off otherwise leaves a tiny
    # skew component that the Cholesky layers would have to re-symmetrize.
    gram = 0.5 * (gram + gram.T)
    return NumericBlock(gram), fl.syrk_flops(m, n)


def local_add(a: Block, b: Block) -> Tuple[Block, float]:
    """Elementwise ``A + B``; one flop per entry."""
    m, n = a.shape
    return a.add(b), fl.elementwise_flops(m, n)


def local_sub(a: Block, b: Block) -> Tuple[Block, float]:
    """Elementwise ``A - B``; one flop per entry (Algorithm 3 line 10)."""
    m, n = a.shape
    return a.sub(b), fl.elementwise_flops(m, n)


def local_neg(a: Block) -> Tuple[Block, float]:
    """Elementwise negation; one flop per entry (Algorithm 3 line 13)."""
    m, n = a.shape
    return a.neg(), fl.elementwise_flops(m, n)


def local_scale(a: Block, scalar: float) -> Tuple[Block, float]:
    """Elementwise scaling; one flop per entry."""
    m, n = a.shape
    return a.scale(scalar), fl.elementwise_flops(m, n)
