"""Sequential Cholesky kernels: factorization, triangular inverse, CholInv.

``local_cholinv`` is the sequential base case of CFR3D (Algorithm 3 line 3):
it returns both the lower-triangular factor ``L`` of ``A = L L.T`` and
``Y = L**-1``.  ``cholinv_recursive`` is a literal transcription of
Algorithm 2's recursion, kept as an executable specification -- the test
suite checks it against the LAPACK-style direct implementation.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.linalg

from repro.kernels import flops as fl
from repro.utils.validation import require
from repro.vmpi.datatypes import Block, NumericBlock, SymbolicBlock


class CholeskyFailure(ValueError):
    """Raised when a Gram matrix is numerically indefinite.

    For CholeskyQR this happens exactly when ``kappa(A)**2`` exceeds
    ``1/eps`` -- the regime the shifted variant (:mod:`repro.core.shifted`)
    exists to handle.  Carrying a dedicated exception type lets callers
    implement the shift-and-retry policy cleanly.
    """


def _chol_lower(a: np.ndarray) -> np.ndarray:
    try:
        return np.linalg.cholesky(a)
    except np.linalg.LinAlgError as exc:
        raise CholeskyFailure(
            f"Cholesky factorization failed on a {a.shape[0]}x{a.shape[0]} Gram matrix; "
            "the input is too ill-conditioned for plain CholeskyQR "
            "(try repro.core.shifted.shifted_cqr3)") from exc


def local_chol(a: Block) -> Tuple[Block, float]:
    """Lower Cholesky factor of a symmetric positive definite block."""
    m, n = a.shape
    require(m == n, f"Cholesky needs a square block, got {a.shape}")
    if isinstance(a, SymbolicBlock):
        return SymbolicBlock((n, n)), fl.chol_flops(n)
    return NumericBlock(_chol_lower(a.data)), fl.chol_flops(n)  # type: ignore[union-attr]


def local_trinv(l: Block) -> Tuple[Block, float]:
    """Inverse of a lower-triangular block."""
    m, n = l.shape
    require(m == n, f"triangular inverse needs a square block, got {l.shape}")
    if isinstance(l, SymbolicBlock):
        return SymbolicBlock((n, n)), fl.trinv_flops(n)
    inv = scipy.linalg.solve_triangular(l.data, np.eye(n), lower=True)  # type: ignore[union-attr]
    return NumericBlock(inv), fl.trinv_flops(n)


def local_cholinv(a: Block) -> Tuple[Block, Block, float]:
    """``(L, Y=L**-1, flops)`` for a symmetric positive definite block.

    This is the ``CholInv`` primitive of Algorithms 2-3; the combined flop
    charge is ``n**3`` (``2n**3/3`` for the factorization plus ``n**3/3``
    for the inverse).
    """
    l, f1 = local_chol(a)
    y, f2 = local_trinv(l)
    return l, y, f1 + f2


def local_trsm_right(b: Block, l: Block) -> Tuple[Block, float]:
    """Solve ``X @ L.T = B`` for ``X`` (right-side lower-transpose TRSM).

    This is the ``Q = A R**-1`` step done *without* the explicit inverse --
    the building block of the InverseDepth variant (Section III-A's
    alternate strategy) and of the baselines.
    """
    m, n = b.shape
    ln, ln2 = l.shape
    require(ln == ln2 == n, f"TRSM shape mismatch: B {b.shape} vs L {l.shape}")
    if isinstance(b, SymbolicBlock):
        return SymbolicBlock((m, n)), fl.trsm_flops(m, n)
    x = scipy.linalg.solve_triangular(
        l.data, b.data.T, lower=True)  # type: ignore[union-attr]
    return NumericBlock(np.ascontiguousarray(x.T)), fl.trsm_flops(m, n)


def cholinv_recursive(a: np.ndarray, base: int = 1) -> Tuple[np.ndarray, np.ndarray]:
    """Literal sequential transcription of Algorithm 2 (``CholInv``).

    Splits ``A`` into quadrants, recurses on ``A11`` and the Schur
    complement ``A22 - L21 L21.T``, and assembles

    .. math::
        L = \\begin{pmatrix} L_{11} & \\\\ L_{21} & L_{22} \\end{pmatrix},
        \\qquad
        Y = \\begin{pmatrix} Y_{11} & \\\\ -Y_{22} L_{21} Y_{11} & Y_{22} \\end{pmatrix}.

    Kept as an executable specification of the math CFR3D parallelizes; the
    production sequential path is :func:`local_cholinv`.
    """
    n = a.shape[0]
    require(a.shape == (n, n), f"need a square matrix, got {a.shape}")
    require(base >= 1, f"base must be >= 1, got {base}")
    if n <= base:
        l = _chol_lower(a)
        y = scipy.linalg.solve_triangular(l, np.eye(n), lower=True)
        return l, y
    h = n // 2
    a11, a21, a22 = a[:h, :h], a[h:, :h], a[h:, h:]
    l11, y11 = cholinv_recursive(a11, base)
    l21 = a21 @ y11.T
    l22, y22 = cholinv_recursive(a22 - l21 @ l21.T, base)
    y21 = -y22 @ (l21 @ y11)
    l = np.zeros_like(a)
    y = np.zeros_like(a)
    l[:h, :h], l[h:, :h], l[h:, h:] = l11, l21, l22
    y[:h, :h], y[h:, :h], y[h:, h:] = y11, y21, y22
    return l, y
