"""Sequential computational kernels (BLAS/LAPACK stand-ins) with flop accounting.

These are the local building blocks of Section II-A: ``axpy``, ``MM``,
``Syrk``, ``Chol``, plus the triangular inverse and the combined
``CholInv`` of Algorithm 2, and a sequential Householder QR used by the
baselines and the accuracy study.

Each kernel is backend-generic: it accepts a :class:`~repro.vmpi.datatypes.Block`
(numeric or symbolic) and returns ``(result_block, flops)``.  The caller --
a distributed algorithm -- charges the flops to the owning rank's ledger.
Flop-count conventions follow the paper exactly (see
:mod:`repro.kernels.flops`).
"""

from repro.kernels.flops import (
    axpy_flops,
    mm_flops,
    syrk_flops,
    chol_flops,
    trinv_flops,
    cholinv_flops,
    trsm_flops,
    householder_flops,
    elementwise_flops,
)
from repro.kernels.blas import (
    local_mm,
    local_mm_tn,
    local_syrk,
    local_add,
    local_sub,
    local_neg,
    local_scale,
)
from repro.kernels.cholesky import (
    local_chol,
    local_trinv,
    local_cholinv,
    cholinv_recursive,
    local_trsm_right,
)
from repro.kernels.householder import local_qr, apply_q_transpose, CompactQR

__all__ = [
    "axpy_flops",
    "mm_flops",
    "syrk_flops",
    "chol_flops",
    "trinv_flops",
    "cholinv_flops",
    "trsm_flops",
    "householder_flops",
    "elementwise_flops",
    "local_mm",
    "local_mm_tn",
    "local_syrk",
    "local_add",
    "local_sub",
    "local_neg",
    "local_scale",
    "local_chol",
    "local_trinv",
    "local_cholinv",
    "cholinv_recursive",
    "local_trsm_right",
    "local_qr",
    "apply_q_transpose",
    "CompactQR",
]
