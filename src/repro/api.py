"""High-level convenience API.

These helpers wrap the full pipeline -- build a virtual machine, build the
grid, distribute the matrix, run the algorithm, gather results and the cost
report -- behind single function calls, which is what the examples and most
downstream users want.  Power users compose the layers directly
(:mod:`repro.vmpi`, :mod:`repro.core`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.baselines.scalapack_qr import scalapack_qr
from repro.baselines.tsqr import tsqr_1d
from repro.core.cacqr import ca_cqr2
from repro.core.cqr_1d import cqr2_1d
from repro.core.tuning import GridShape, optimal_grid
from repro.costmodel.ledger import CostReport
from repro.costmodel.params import ABSTRACT_MACHINE, MachineSpec
from repro.utils.validation import check_positive_int, require
from repro.vmpi.distmatrix import DistMatrix
from repro.vmpi.grid import Grid3D
from repro.vmpi.machine import VirtualMachine


@dataclass
class QRRun:
    """Result of a high-level QR run: factors plus the cost report.

    ``q @ r`` reconstructs the input; ``report`` carries per-rank
    message/word/flop maxima and the BSP critical-path time under the
    machine preset the run was configured with.
    """

    q: np.ndarray
    r: np.ndarray
    report: CostReport
    grid: Optional[GridShape] = None

    def orthogonality_error(self) -> float:
        """``||Q^T Q - I||_2`` -- the paper's notion of lost orthogonality."""
        n = self.q.shape[1]
        return float(np.linalg.norm(self.q.T @ self.q - np.eye(n), 2))

    def residual_error(self, a: np.ndarray) -> float:
        """Relative residual ``||A - QR||_F / ||A||_F``."""
        return float(np.linalg.norm(a - self.q @ self.r, "fro")
                     / np.linalg.norm(a, "fro"))


def cacqr2_factorize(a: np.ndarray, c: Optional[int] = None, d: Optional[int] = None,
                     procs: Optional[int] = None,
                     machine: MachineSpec = ABSTRACT_MACHINE,
                     base_case_size: Optional[int] = None) -> QRRun:
    """Run CA-CQR2 on a numpy matrix over a simulated ``c x d x c`` grid.

    Either pass ``(c, d)`` explicitly or pass ``procs`` and let
    :func:`~repro.core.tuning.optimal_grid` pick the paper's ``m/d = n/c``
    grid.  Returns global ``Q``/``R`` plus the cost report.
    """
    a = np.asarray(a, dtype=np.float64)
    require(a.ndim == 2 and a.shape[0] >= a.shape[1],
            f"need a tall 2D matrix, got shape {a.shape}")
    m, n = a.shape
    if c is None or d is None:
        require(procs is not None,
                "pass either an explicit (c, d) grid or a processor count")
        shape = optimal_grid(m, n, procs)
    else:
        check_positive_int(c, "c")
        check_positive_int(d, "d")
        shape = GridShape(c=c, d=d)
    vm = VirtualMachine(shape.procs, machine)
    grid = Grid3D.tunable(vm, shape.c, shape.d)
    dist = DistMatrix.from_global(grid, a)
    result = ca_cqr2(vm, dist, base_case_size=base_case_size)
    q = result.q.to_global()
    r = np.triu(result.r.to_global())
    return QRRun(q=q, r=r, report=vm.report(), grid=shape)


def cqr2_1d_factorize(a: np.ndarray, procs: int,
                      machine: MachineSpec = ABSTRACT_MACHINE) -> QRRun:
    """Run the existing 1D-CQR2 parallelization on ``procs`` virtual ranks."""
    a = np.asarray(a, dtype=np.float64)
    check_positive_int(procs, "procs")
    vm = VirtualMachine(procs, machine)
    grid = Grid3D.build(vm, 1, procs, 1)
    dist = DistMatrix.from_global(grid, a)
    q, r = cqr2_1d(vm, dist)
    return QRRun(q=q.to_global(), r=np.triu(r.to_global()), report=vm.report(),
                 grid=GridShape(c=1, d=procs))


def tsqr_factorize(a: np.ndarray, procs: int,
                   machine: MachineSpec = ABSTRACT_MACHINE) -> QRRun:
    """Run the TSQR baseline on ``procs`` virtual ranks."""
    a = np.asarray(a, dtype=np.float64)
    check_positive_int(procs, "procs")
    vm = VirtualMachine(procs, machine)
    grid = Grid3D.build(vm, 1, procs, 1)
    dist = DistMatrix.from_global(grid, a)
    q, r = tsqr_1d(vm, dist)
    return QRRun(q=q.to_global(), r=r.to_global(), report=vm.report(),
                 grid=GridShape(c=1, d=procs))


def scalapack_factorize(a: np.ndarray, pr: int, pc: int, block_size: int,
                        machine: MachineSpec = ABSTRACT_MACHINE) -> QRRun:
    """Run the ScaLAPACK-like 2D blocked QR baseline on a ``pr x pc`` grid."""
    a = np.asarray(a, dtype=np.float64)
    vm = VirtualMachine(pr * pc, machine)
    grid = Grid3D.build(vm, pc, pr, 1)
    dist = DistMatrix.from_global(grid, a)
    q, r = scalapack_qr(vm, dist, block_size)
    return QRRun(q=q.to_global(), r=r.to_global(), report=vm.report())
