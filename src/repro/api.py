"""High-level convenience API.

These helpers wrap single algorithms behind single function calls, which
is what the examples and most downstream users want.  Every wrapper is a
thin shim over the unified run engine: it builds a
:class:`repro.engine.RunSpec` and dispatches through
:func:`repro.engine.run`, so all algorithms share one
VM -> grid -> distribute -> run -> report pipeline.

Power users should reach for :mod:`repro.engine` directly -- it exposes
the full algorithm registry (including capability checks and the analytic
cost-model counterparts), declarative :class:`~repro.engine.RunSpec`
construction, symbolic (cost-only) mode, and the parallel, cached batch
runner :func:`repro.engine.run_batch` for sweeps -- rather than
hand-composing the :mod:`repro.vmpi` / :mod:`repro.core` layers.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.engine import RunSpec, run
from repro.engine.result import Grid2DShape, QRRun
from repro.costmodel.params import ABSTRACT_MACHINE, MachineSpec

__all__ = [
    "Grid2DShape",
    "QRRun",
    "cacqr2_factorize",
    "cqr2_1d_factorize",
    "scalapack_factorize",
    "tsqr_factorize",
]


def cacqr2_factorize(a: np.ndarray, c: Optional[int] = None, d: Optional[int] = None,
                     procs: Optional[int] = None,
                     machine: MachineSpec = ABSTRACT_MACHINE,
                     base_case_size: Optional[int] = None) -> QRRun:
    """Run CA-CQR2 on a numpy matrix over a simulated ``c x d x c`` grid.

    Either pass ``(c, d)`` explicitly or pass ``procs`` and let
    :func:`~repro.core.tuning.optimal_grid` pick the paper's ``m/d = n/c``
    grid.  Returns global ``Q``/``R`` plus the cost report.
    """
    return run(RunSpec(algorithm="ca_cqr2", data=a, c=c, d=d, procs=procs,
                       machine=machine, base_case_size=base_case_size))


def cqr2_1d_factorize(a: np.ndarray, procs: int,
                      machine: MachineSpec = ABSTRACT_MACHINE) -> QRRun:
    """Run the existing 1D-CQR2 parallelization on ``procs`` virtual ranks."""
    return run(RunSpec(algorithm="cqr2_1d", data=a, procs=procs, machine=machine))


def tsqr_factorize(a: np.ndarray, procs: int,
                   machine: MachineSpec = ABSTRACT_MACHINE) -> QRRun:
    """Run the TSQR baseline on ``procs`` virtual ranks."""
    return run(RunSpec(algorithm="tsqr", data=a, procs=procs, machine=machine))


def scalapack_factorize(a: np.ndarray, pr: int, pc: int, block_size: int,
                        machine: MachineSpec = ABSTRACT_MACHINE) -> QRRun:
    """Run the ScaLAPACK-like 2D blocked QR baseline on a ``pr x pc`` grid."""
    return run(RunSpec(algorithm="scalapack", data=a, pr=pr, pc=pc,
                       block_size=block_size, machine=machine))
