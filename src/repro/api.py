"""High-level convenience API (deprecated shims over :class:`repro.Session`).

These helpers wrap single algorithms behind single function calls.
Every wrapper is a byte-identical shim over the **default session**: it
builds a :class:`repro.engine.RunSpec` and dispatches through
:meth:`repro.session.Session.run`, so all algorithms share one
VM -> grid -> distribute -> run -> report pipeline and produce exactly
the result the pre-Session spelling did.

.. deprecated::
    New code should use the Session API instead -- one ambient context
    (machine, caches, executor, objective) behind every call::

        from repro import Session

        session = Session(machine="stampede2")
        run = session.factor(a, algorithm="ca_cqr2", c=2, d=8)
        auto = session.factor(a, procs=64)      # planner picks the config

    Each wrapper emits a :exc:`DeprecationWarning` naming its Session
    equivalent.  Power users wanting declarative specs, symbolic
    (cost-only) mode, or parallel cached sweeps should reach for
    :class:`repro.engine.RunSpec` with ``session.run`` /
    ``session.run_batch``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.engine import RunSpec
from repro.engine.result import Grid2DShape, QRRun
from repro.costmodel.params import ABSTRACT_MACHINE, MachineSpec
from repro.session import default_session
from repro.utils.deprecation import warn_deprecated

__all__ = [
    "Grid2DShape",
    "QRRun",
    "cacqr2_factorize",
    "cqr2_1d_factorize",
    "scalapack_factorize",
    "tsqr_factorize",
]


def cacqr2_factorize(a: np.ndarray, c: Optional[int] = None, d: Optional[int] = None,
                     procs: Optional[int] = None,
                     machine: MachineSpec = ABSTRACT_MACHINE,
                     base_case_size: Optional[int] = None) -> QRRun:
    """Run CA-CQR2 on a numpy matrix over a simulated ``c x d x c`` grid.

    Either pass ``(c, d)`` explicitly or pass ``procs`` and let
    :func:`~repro.core.tuning.optimal_grid` pick the paper's ``m/d = n/c``
    grid.  Returns global ``Q``/``R`` plus the cost report.

    .. deprecated:: use ``Session.factor(a, algorithm="ca_cqr2", ...)``.
    """
    warn_deprecated("cacqr2_factorize",
                    'Session.factor(a, algorithm="ca_cqr2", ...)')
    return default_session().run(
        RunSpec(algorithm="ca_cqr2", data=a, c=c, d=d, procs=procs,
                machine=machine, base_case_size=base_case_size))


def cqr2_1d_factorize(a: np.ndarray, procs: int,
                      machine: MachineSpec = ABSTRACT_MACHINE) -> QRRun:
    """Run the existing 1D-CQR2 parallelization on ``procs`` virtual ranks.

    .. deprecated:: use ``Session.factor(a, algorithm="cqr2_1d", ...)``.
    """
    warn_deprecated("cqr2_1d_factorize",
                    'Session.factor(a, algorithm="cqr2_1d", ...)')
    return default_session().run(
        RunSpec(algorithm="cqr2_1d", data=a, procs=procs, machine=machine))


def tsqr_factorize(a: np.ndarray, procs: int,
                   machine: MachineSpec = ABSTRACT_MACHINE) -> QRRun:
    """Run the TSQR baseline on ``procs`` virtual ranks.

    .. deprecated:: use ``Session.factor(a, algorithm="tsqr", ...)``.
    """
    warn_deprecated("tsqr_factorize",
                    'Session.factor(a, algorithm="tsqr", ...)')
    return default_session().run(
        RunSpec(algorithm="tsqr", data=a, procs=procs, machine=machine))


def scalapack_factorize(a: np.ndarray, pr: int, pc: int, block_size: int,
                        machine: MachineSpec = ABSTRACT_MACHINE) -> QRRun:
    """Run the ScaLAPACK-like 2D blocked QR baseline on a ``pr x pc`` grid.

    .. deprecated:: use ``Session.factor(a, algorithm="scalapack", ...)``.
    """
    warn_deprecated("scalapack_factorize",
                    'Session.factor(a, algorithm="scalapack", ...)')
    return default_session().run(
        RunSpec(algorithm="scalapack", data=a, pr=pr, pc=pc,
                block_size=block_size, machine=machine))
