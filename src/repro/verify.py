"""Structured verification of QR factorizations.

A downstream user adopting this library wants one call that says whether a
factorization is trustworthy and *why not* if it is not.  ``verify_qr``
checks the four defining properties with condition-number-aware tolerances:

1. **reconstruction**: ``||A - QR||_F / ||A||_F`` at working precision;
2. **orthogonality**: ``||Q^T Q - I||_2`` at working precision (scaled by
   ``sqrt(m)`` round-off growth);
3. **triangularity**: ``R`` is exactly upper triangular;
4. **sign convention**: non-negative diagonal (uniqueness of the reduced
   factorization), when requested.

The thresholds encode the stability ladder: plain CholeskyQR is *expected*
to fail orthogonality at ``kappa^2 eps`` scale, CQR2/Householder at
``~eps``; callers choose the profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.utils.validation import require


@dataclass(frozen=True)
class QRVerdict:
    """Outcome of :func:`verify_qr`: metrics plus pass/fail with reasons."""

    reconstruction_error: float
    orthogonality_error: float
    is_upper_triangular: bool
    has_nonnegative_diagonal: bool
    passed: bool
    failures: List[str] = field(default_factory=list)

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL: " + "; ".join(self.failures)
        return (f"QRVerdict(residual={self.reconstruction_error:.2e}, "
                f"orthogonality={self.orthogonality_error:.2e}, "
                f"triangular={self.is_upper_triangular}, {status})")


def verify_qr(a: np.ndarray, q: np.ndarray, r: np.ndarray,
              orthogonality_tol: Optional[float] = None,
              reconstruction_tol: Optional[float] = None,
              require_sign_convention: bool = False) -> QRVerdict:
    """Verify ``A = Q R`` with orthonormal ``Q`` and upper-triangular ``R``.

    Default tolerances scale with the problem: ``reconstruction_tol =
    100 * sqrt(m) * eps`` and ``orthogonality_tol = 1000 * sqrt(m) * eps``
    (loose enough for any backward-stable algorithm, tight enough to catch
    a CholeskyQR pass on an ill-conditioned input).
    """
    a = np.asarray(a, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    r = np.asarray(r, dtype=np.float64)
    m, n = a.shape
    require(q.shape == (m, n), f"Q shape {q.shape} does not match A {a.shape}")
    require(r.shape == (n, n), f"R shape {r.shape} is not {n}x{n}")
    eps = np.finfo(np.float64).eps
    if reconstruction_tol is None:
        reconstruction_tol = 100.0 * np.sqrt(m) * eps
    if orthogonality_tol is None:
        orthogonality_tol = 1000.0 * np.sqrt(m) * eps

    a_norm = np.linalg.norm(a, "fro")
    recon = float(np.linalg.norm(a - q @ r, "fro") / a_norm) if a_norm > 0 else 0.0
    orth = float(np.linalg.norm(q.T @ q - np.eye(n), 2))
    triangular = bool(np.allclose(r, np.triu(r), atol=0.0))
    nonneg = bool((np.diag(r) >= 0).all())

    failures: List[str] = []
    if recon > reconstruction_tol:
        failures.append(f"reconstruction {recon:.2e} > {reconstruction_tol:.2e}")
    if orth > orthogonality_tol:
        failures.append(f"orthogonality {orth:.2e} > {orthogonality_tol:.2e}")
    if not triangular:
        failures.append("R is not upper triangular")
    if require_sign_convention and not nonneg:
        failures.append("R has negative diagonal entries")

    return QRVerdict(reconstruction_error=recon, orthogonality_error=orth,
                     is_upper_triangular=triangular,
                     has_nonnegative_diagonal=nonneg,
                     passed=not failures, failures=failures)


def verify_distributed_consistency(dist_matrix, atol: float = 0.0) -> bool:
    """Check a :class:`~repro.vmpi.distmatrix.DistMatrix`'s depth replication.

    Returns ``True`` when every depth copy agrees to within *atol* (the
    steady-state invariant every algorithm here must restore on outputs).
    """
    spread = dist_matrix.replication_spread()
    return spread <= atol


def cross_check(a: np.ndarray, factorizations, atol: float = 1e-9) -> List[str]:
    """Compare several ``(label, Q, R)`` triples for mutual consistency.

    The reduced QR with non-negative diagonal is unique, so all correct
    algorithms must agree on ``|R|`` entrywise.  Returns a list of
    mismatch descriptions (empty = all consistent).
    """
    problems: List[str] = []
    triples = list(factorizations)
    require(len(triples) >= 2, "cross_check needs at least two factorizations")
    ref_label, _, ref_r = triples[0]
    ref = np.abs(np.asarray(ref_r))
    for label, _, r in triples[1:]:
        diff = float(np.max(np.abs(np.abs(np.asarray(r)) - ref)))
        if diff > atol:
            problems.append(f"{label} vs {ref_label}: max |R| deviation {diff:.2e}")
    return problems
