"""CA-CQR and CA-CQR2 (Algorithms 8-9): CholeskyQR2 on a tunable 3D grid.

The ``m x n`` matrix ``A`` lives on a ``c x d x c`` grid ``Pi[x, y, z]``
(``P = c**2 d``), cyclically partitioned into ``m/d x n/c`` local blocks
(rows over ``y``, columns over ``x``) and replicated over depth ``z``.

One CA-CQR pass:

1. **Row broadcast** (line 1): ``Pi[z, y, z]`` broadcasts its block along
   ``Pi[:, y, z]`` as ``W`` -- slice ``z`` obtains ``A``'s columns of
   residue ``z``.
2. **Local Gram** (line 2): ``X = W.T @ A_local``, the rows-``y`` partial of
   the Gram block ``(A.T A)[z::c, x::c]``.
3. **Contiguous-group Reduce** (line 3): within each y-group of size ``c``,
   reduce onto the root with ``y mod c == z``, summing the group's row
   partials.
4. **Strided Allreduce** (line 4): across the ``d/c`` group roots (stride
   ``c`` along ``y``), completing the sum over all rows.  Every subcube's
   root set now holds the full Gram matrix, cyclically distributed.
5. **Depth broadcast** (line 5): along ``Pi[x, y, :]`` from root
   ``z = y mod c``, replicating the Gram over depth.  Rank ``(x, y, z)``
   now holds ``Z[(y mod c)::c, x::c]`` -- within its subcube, exactly the
   cyclic slice-replicated layout CFR3D requires.
6. **d/c simultaneous CFR3D calls** (lines 6-7) on the cubic subgrids
   ``Pi[:, g*c:(g+1)*c, :]`` produce ``R.T`` and ``R**-T`` redundantly per
   subcube -- after which *no further cross-subcube communication is
   needed*.
7. **MM3D per subcube** (line 8) forms ``Q = A R**-1`` on each subcube's
   own rows.

CA-CQR2 runs two passes and merges ``R = R2 R1`` with one more per-subcube
MM3D (Algorithm 9).

Setting ``c = 1`` degenerates to 1D-CQR2 (no column partitioning, one
Allreduce); ``c = d = P**(1/3)`` gives the cubic 3D-CQR2.  The cost
interpolates accordingly (Table I):

``O(c**2 log P) alpha + O(mn/(dc) + n**2/c**2) beta + O(mn**2/(c**2 d) + n**3/c**3) gamma``.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.cfr3d import cfr3d, default_base_case
from repro.core.mm3d import mm3d
from repro.costmodel import collectives as cc
from repro.kernels import flops as fl
from repro.kernels.blas import local_mm_tn
from repro.sched import (
    ChargeProgram,
    RankFamilyMap,
    ScheduleRecorder,
    compiled_replay_enabled,
)
from repro.utils.validation import require
from repro.vmpi.datatypes import Block, SymbolicBlock, zeros_block
from repro.vmpi.distmatrix import DistMatrix, dist_transpose
from repro.vmpi.grid import Grid3D
from repro.vmpi.machine import VirtualMachine


@dataclass
class CACQRResult:
    """Result of a CA-CQR / CA-CQR2 call.

    Attributes
    ----------
    q:
        The orthogonal factor, distributed on the full ``c x d x c`` grid
        exactly like the input.
    r:
        The triangular factor on subcube 0's cubic grid (every subcube
        holds an identical redundant copy; ``r_subcubes`` exposes all of
        them for verification).
    r_subcubes:
        Per-subcube copies of ``R``.
    """

    q: DistMatrix
    r: DistMatrix
    r_subcubes: List[DistMatrix]


def _validate(a: DistMatrix) -> Tuple[int, int]:
    g = a.grid
    require(g.dim_x == g.dim_z,
            f"CA-CQR needs a c x d x c grid, got dims {g.dims}")
    c, d = g.dim_x, g.dim_y
    require(d % c == 0, f"grid depth d={d} must be a multiple of c={c}")
    require(a.m >= a.n, f"CA-CQR needs a tall matrix, got {a.m}x{a.n}")
    require(a.n % c == 0, f"n={a.n} must be divisible by c={c}")
    require(a.m % d == 0, f"m={a.m} must be divisible by d={d}")
    return c, d


def _gram_replicated(vm: VirtualMachine, a: DistMatrix,
                     phase: str) -> Dict[int, Block]:
    """Algorithm 8 lines 1-5: every rank ends with its subcube's cyclic Gram block."""
    return _cross_product_replicated(vm, a, a, phase, symmetric=True)


def _cross_product_replicated(vm: VirtualMachine, w_source: DistMatrix,
                              target: DistMatrix, phase: str,
                              symmetric: bool) -> Dict[int, Block]:
    """The Gram dance generalized to ``Z = W_source.T @ target``.

    With ``w_source is target`` this is Algorithm 8 lines 1-5 (the Gram
    matrix, charged at the symmetric Syrk rate).  With a *different*
    ``w_source`` -- e.g. a panel's Q factor against the trailing matrix --
    the identical communication schedule computes the cross product
    ``W = Q_p.T C`` needed by the panel-blocked variant, charged at the
    full GEMM rate.  Either way every rank ends holding the cyclic block
    ``Z[(y mod c)::c, x::c]`` of the result, replicated over depth, which
    is exactly the subcube layout downstream MM3D/CFR3D calls expect.
    """
    g = w_source.grid
    require(g.matches(target.grid), "cross-product operands must share a grid")
    require(w_source.m == target.m,
            f"row counts disagree: {w_source.m} vs {target.m}")
    c, d = g.dim_x, g.dim_y
    symbolic = not target.is_numeric
    if symbolic:
        return _cross_product_symbolic(vm, w_source, target, phase, symmetric)

    # Line 1: row broadcast of the root-z column panel of W's source.
    w_panels: Dict[int, Block] = {}
    for z in range(c):
        for y in range(d):
            comm = g.comm_x(y, z)
            root_block = w_source.local(z, y, z)
            w_panels.update(comm.bcast(root_block, root_index=z, phase=f"{phase}.bcast-w"))

    # Line 2: local X = W.T @ target.  Symmetric (self) products are
    # charged at the Syrk rate -- the paper's critical-path flop count
    # (4 m n**2 + (5/3) n**3 for CQR2) assumes the implementation exploits
    # the Gram matrix's symmetry; the numeric backend still forms the
    # plain product.
    partials: Dict[int, Block] = {}
    for (x, y, z) in g.coords():
        rank = g.rank_at(x, y, z)
        prod, flops = local_mm_tn(w_panels[rank], target.blocks[rank])
        vm.charge_flops(rank, flops / 2.0 if symmetric else flops,
                        f"{phase}.local-gram")
        partials[rank] = prod

    # Line 3: reduce within each contiguous y-group of size c, root at
    # group position z (i.e. the member with y mod c == z).
    gram_shape = (w_source.n // c, target.n // c)
    group_sums: Dict[int, Block] = {}
    for z in range(c):
        for x in range(c):
            for group in range(d // c):
                comm = g.comm_y_group(x, z, group, c)
                contributions = {r: partials[r] for r in comm.ranks}
                summed = comm.reduce(contributions, root_index=z, phase=f"{phase}.reduce-group")
                root_rank = g.rank_at(x, group * c + z, z)
                group_sums[root_rank] = summed

    # Line 4: allreduce across the d/c group roots (stride-c y-subgroups).
    # Non-root residues participate with zero contributions: the real
    # algorithm has them join their own subgroup's allreduce with data that
    # is never consumed; the cost is charged either way.
    full_grams: Dict[int, Block] = {}
    for z in range(c):
        for x in range(c):
            for residue in range(c):
                comm = g.comm_y_strided(x, z, residue, c)
                contributions = {}
                for r in comm.ranks:
                    contributions[r] = group_sums.get(r, zeros_block(gram_shape, symbolic))
                result = comm.allreduce(contributions, phase=f"{phase}.allreduce-roots")
                if residue == z:
                    full_grams.update(result)

    # Line 5: depth broadcast from root z = y mod c.
    replicated: Dict[int, Block] = {}
    for y in range(d):
        root_z = y % c
        for x in range(c):
            comm = g.comm_z(x, y)
            root_block = full_grams[g.rank_at(x, y, root_z)]
            replicated.update(comm.bcast(root_block, root_index=root_z,
                                         phase=f"{phase}.bcast-depth"))
    return replicated


def _cross_product_symbolic(vm: VirtualMachine, w_source: DistMatrix,
                            target: DistMatrix, phase: str,
                            symmetric: bool) -> Dict[int, Block]:
    """The Gram dance's cost-only schedule, charged family-by-family.

    Each of Algorithm 8's lines 1/3/4/5 sweeps a family of pairwise
    disjoint, equal-cost communicator groups over the uniform cyclic
    layout, so each line collapses into a single vectorized machine call;
    line 2's local product is identical on every rank.  Disjoint charges
    commute, so clocks and ledgers are bit-identical to the per-group
    schedule the numeric path runs.
    """
    g = w_source.grid
    c, d = g.dim_x, g.dim_y
    require(d % c == 0, f"grid depth d={d} must be a multiple of c={c}")
    ranks = g.ranks

    # Line 1: row broadcast of the root-z column panel of W's source.
    w_shape = (w_source.m // d, w_source.n // c)
    row_groups = ranks.transpose(1, 2, 0).reshape(-1, c)
    vm.charge_comm_groups(row_groups, cc.bcast_cost(w_shape[0] * w_shape[1], c),
                          f"{phase}.bcast-w")

    # Line 2: local X = W.T @ target, identical on every rank (Syrk rate
    # when symmetric -- see the numeric path's comment).
    t_shape = (target.m // d, target.n // c)
    partial, flops = local_mm_tn(SymbolicBlock(w_shape), SymbolicBlock(t_shape))
    vm.charge_flops_group(g.all_ranks_array,
                          flops / 2.0 if symmetric else flops,
                          f"{phase}.local-gram")

    # Line 3: reduce within each contiguous y-group of size c.
    by_xzy = ranks.transpose(0, 2, 1)                    # [x, z, y]
    contiguous = by_xzy.reshape(-1, c)                   # rows: (x, z, group)
    vm.charge_comm_groups(contiguous, cc.reduce_cost(partial.words, c),
                          f"{phase}.reduce-group")

    # Line 4: allreduce across the d/c group roots (stride-c y-subgroups).
    gram_shape = (w_source.n // c, target.n // c)
    gram_words = gram_shape[0] * gram_shape[1]
    strided = (by_xzy.reshape(c, c, d // c, c)
               .transpose(0, 1, 3, 2).reshape(-1, d // c))
    vm.charge_comm_groups(strided, cc.allreduce_cost(gram_words, d // c),
                          f"{phase}.allreduce-roots")

    # Line 5: depth broadcast from root z = y mod c.
    fiber_groups = ranks.reshape(-1, c)                  # rows: (x, y), cols z
    vm.charge_comm_groups(fiber_groups, cc.bcast_cost(gram_words, c),
                          f"{phase}.bcast-depth")

    shared = SymbolicBlock(gram_shape)
    return dict.fromkeys(g.all_ranks(), shared)


def _apply_gram_shift(vm: VirtualMachine, g: Grid3D, gram_blocks: Dict[int, Block],
                      n: int, shift: float, phase: str) -> None:
    """Add ``shift * I`` to the distributed Gram matrix, in place.

    Rank ``(x, y, z)`` holds the cyclic block ``Z[(y mod c)::c, x::c]``; its
    local diagonal entries correspond to global diagonal entries only when
    ``x == y mod c``, at local positions ``(k, k)``.  A purely local
    operation -- the "minimal modification" the paper's Section V mentions
    for shifted CholeskyQR.
    """
    c = g.dim_x
    per_rank_diag = n // c
    first = next(iter(gram_blocks.values()))
    if not first.is_numeric:
        # Shape-only blocks: nothing to mutate, charge the whole diagonal
        # rank family (one rank per (y, z) with x = y mod c) in one call.
        ys = np.arange(g.dim_y)
        diag_ranks = g.ranks[ys % c, ys, :].reshape(-1)
        vm.charge_flops_group(diag_ranks, float(per_rank_diag), f"{phase}.shift")
        return
    for (x, y, z) in g.coords():
        if x != y % c:
            continue
        rank = g.rank_at(x, y, z)
        blk = gram_blocks[rank]
        vm.charge_flops(rank, float(per_rank_diag), f"{phase}.shift")
        if isinstance(blk, Block) and blk.is_numeric:
            shifted = blk.copy()
            shifted.data[np.diag_indices(per_rank_diag)] += shift  # type: ignore[union-attr]
            gram_blocks[rank] = shifted


@functools.lru_cache(maxsize=64)
def _subcube_pass_program(c: int, n: int, rows_per_subcube: int,
                          base_case_size: int) -> Tuple[ChargeProgram, Grid3D]:
    """Compile one subcube's CFR3D + form-Q/form-R stage (Algorithm 8
    lines 6-8) on a standalone ``c x c x c`` template grid.

    Recorded once per ``(c, n, rows, n0)`` under the placeholder phase
    prefix ``"@"`` and memoized: both CA-CQR2 passes (and every caller
    with the same shapes) reuse the identical program through
    :meth:`~repro.sched.program.ChargeProgram.phases_with_prefix`.
    Returns the program together with its template grid, whose layout the
    subcube binding inverts.
    """
    rec = ScheduleRecorder(c * c * c)
    rec_grid = Grid3D.build(rec, c, c, c)
    z0 = DistMatrix.symbolic(rec_grid, n, n)
    l0, y0 = cfr3d(rec, z0, base_case_size, phase="@.cfr3d")
    rinv0 = dist_transpose(rec, y0, "@.form-q.transpose")
    a0 = DistMatrix.symbolic(rec_grid, rows_per_subcube, n)
    mm3d(rec, a0, rinv0, phase="@.form-q.mm3d",
         flop_fraction=fl.TRMM_FRACTION)
    dist_transpose(rec, l0, "@.form-r.transpose")
    return rec.program(), rec_grid


@functools.lru_cache(maxsize=64)
def _merge_program(c: int, n: int) -> Tuple[ChargeProgram, Grid3D]:
    """Compile the per-subcube ``R = R2 R1`` merge MM3D (Algorithm 9)."""
    rec = ScheduleRecorder(c * c * c)
    rec_grid = Grid3D.build(rec, c, c, c)
    mm3d(vm=rec,
         a=DistMatrix.symbolic(rec_grid, n, n),
         b=DistMatrix.symbolic(rec_grid, n, n),
         phase="@.merge-r.mm3d",
         flop_fraction=fl.TRI_TRI_FRACTION)
    return rec.program(), rec_grid


def _shared_subcube_results(g: Grid3D, n: int,
                            shape: Tuple[int, int]) -> List[DistMatrix]:
    """Per-subcube ``n x n`` symbolic DistMatrixes with one shared block.

    Symbolic blocks carry only shapes, and every rank of every subcube
    holds the same local shape, so one :class:`SymbolicBlock` serves all
    of them -- no per-rank dict rebuild per subcube.
    """
    shared = SymbolicBlock(shape)
    out = []
    for group in range(g.dim_y // g.dim_x):
        sub = g.subcube(group)
        out.append(DistMatrix(sub, n, n, dict.fromkeys(sub.all_ranks(), shared)))
    return out


def _use_subcube_replay(vm: VirtualMachine, a: DistMatrix) -> bool:
    """Whether the compiled subcube-replay path applies.

    Symbolic runs only (numeric subcubes hold distinct data), with more
    than one subcube (otherwise the loop is already minimal), and the
    Schedule IR not disabled (``REPRO_SCHED_DISABLE`` /
    :func:`repro.sched.compiled_replay_disabled`).  Replay composes with
    an attached trace sink -- the per-op strategy emits every rank's
    events with exact timestamps -- so tracing no longer forces the loop.
    """
    g = a.grid
    return (not a.is_numeric and g.dim_y > g.dim_x
            and compiled_replay_enabled())


def ca_cqr(vm: VirtualMachine, a: DistMatrix, base_case_size: Optional[int] = None,
           phase: str = "cacqr", gram_shift: Optional[float] = None) -> CACQRResult:
    """One CA-CQR pass (Algorithm 8).

    Parameters
    ----------
    vm:
        Virtual machine charged for all communication and computation.
    a:
        Tall ``m x n`` :class:`DistMatrix` on a ``c x d x c`` grid.
    base_case_size:
        CFR3D recursion cutoff ``n0`` (per subcube); defaults to the
        communication-optimal :func:`~repro.core.cfr3d.default_base_case`.
    phase:
        Ledger phase prefix (sub-steps: ``.bcast-w``, ``.local-gram``,
        ``.reduce-group``, ``.allreduce-roots``, ``.bcast-depth``,
        ``.cfr3d.*``, ``.form-q.*``).
    gram_shift:
        Optional diagonal shift added to the Gram matrix before CFR3D --
        the shifted-CholeskyQR regularization (see
        :func:`repro.core.shifted.ca_shifted_cqr3`).

    Returns
    -------
    CACQRResult
        ``Q`` on the full grid; ``R`` per subcube.
    """
    c, d = _validate(a)
    g = a.grid
    gram_blocks = _gram_replicated(vm, a, phase)
    if gram_shift is not None:
        _apply_gram_shift(vm, g, gram_blocks, a.n, gram_shift, phase)
    if base_case_size is None:
        base_case_size = default_base_case(a.n, c)

    q_blocks: Dict[int, Block] = {}
    r_subcubes: List[DistMatrix] = []
    rows_per_subcube = c * (a.m // d)
    if _use_subcube_replay(vm, a):
        # Compiled symbolic path: all d/c subcubes run the *identical*
        # shape-only schedule on disjoint rank sets, so compile it once
        # on a standalone c x c x c template grid (memoized across passes
        # and calls) and replay it onto every subcube in one bound
        # program -- the subcube loop stops scaling with d/c (the c = 1,
        # d = P degenerate grid has P subcubes).
        program, rec_grid = _subcube_pass_program(c, a.n, rows_per_subcube,
                                                  base_case_size)
        bound = program.specialize(RankFamilyMap.subcubes(g, rec_grid))
        bound.replay(vm, phases=program.phases_with_prefix("@", phase))
        shared_q = SymbolicBlock((rows_per_subcube // c, a.n // c))
        q = DistMatrix(g, a.m, a.n, dict.fromkeys(g.all_ranks(), shared_q))
        r_subcubes = _shared_subcube_results(g, a.n, (a.n // c, a.n // c))
        return CACQRResult(q=q, r=r_subcubes[0], r_subcubes=r_subcubes)

    for group in range(d // c):
        sub = g.subcube(group)
        z_sub = DistMatrix(sub, a.n, a.n,
                           {r: gram_blocks[r] for r in sub.all_ranks()})
        # Line 7: CFR3D gives L = R.T and Y = R**-T on the subcube.
        l, y = cfr3d(vm, z_sub, base_case_size, phase=f"{phase}.cfr3d")
        # Line 8: Q = A @ R**-1 with R**-1 = Y.T (one transpose, then MM3D).
        # R**-1 is triangular, so the multiply is charged at the TRMM rate.
        rinv = dist_transpose(vm, y, f"{phase}.form-q.transpose")
        a_sub = a.reindexed(sub, m=rows_per_subcube)
        q_sub = mm3d(vm, a_sub, rinv, phase=f"{phase}.form-q.mm3d",
                     flop_fraction=fl.TRMM_FRACTION)
        q_blocks.update(q_sub.blocks)
        r_subcubes.append(dist_transpose(vm, l, f"{phase}.form-r.transpose"))

    q = DistMatrix(g, a.m, a.n, q_blocks)
    return CACQRResult(q=q, r=r_subcubes[0], r_subcubes=r_subcubes)


def ca_cqr2(vm: VirtualMachine, a: DistMatrix, base_case_size: Optional[int] = None,
            phase: str = "cacqr2") -> CACQRResult:
    """CA-CQR2 (Algorithm 9): two CA-CQR passes plus the per-subcube R merge.

    Returns ``Q`` (distributed like ``a``) and ``R = R2 @ R1`` computed by
    one MM3D per subcube (each subcube already holds both factors, so the
    merge needs no cross-subcube communication).
    """
    c, d = _validate(a)
    first = ca_cqr(vm, a, base_case_size, phase=f"{phase}.pass1")
    second = ca_cqr(vm, first.q, base_case_size, phase=f"{phase}.pass2")

    g = a.grid
    r_subcubes: List[DistMatrix] = []
    if _use_subcube_replay(vm, a):
        # Same compiled path as the per-subcube CFR3D stage: the merge
        # MM3D is identical per subcube, so one memoized template program
        # replays onto all of them.
        program, rec_grid = _merge_program(c, a.n)
        bound = program.specialize(RankFamilyMap.subcubes(g, rec_grid))
        bound.replay(vm, phases=program.phases_with_prefix("@", phase))
        r_subcubes = _shared_subcube_results(g, a.n, (a.n // c, a.n // c))
        return CACQRResult(q=second.q, r=r_subcubes[0], r_subcubes=r_subcubes)

    for group in range(d // c):
        r2 = second.r_subcubes[group]
        r1 = first.r_subcubes[group]
        # Triangular x triangular with triangular result: n**3/3 flops.
        merged = mm3d(vm, r2, r1, phase=f"{phase}.merge-r.mm3d",
                      flop_fraction=fl.TRI_TRI_FRACTION)
        r_subcubes.append(merged)
    return CACQRResult(q=second.q, r=r_subcubes[0], r_subcubes=r_subcubes)


def cqr2_3d(vm: VirtualMachine, a: DistMatrix, base_case_size: Optional[int] = None,
            phase: str = "cqr2-3d") -> CACQRResult:
    """3D-CQR2 (Section III-A): the cubic-grid special case ``c = d = P**(1/3)``.

    Implemented by requiring a cubic grid and delegating to CA-CQR2, whose
    Gram dance degenerates exactly to the 3D scheme (one contiguous group,
    a singleton strided allreduce, one subcube).
    """
    require(a.grid.is_cubic,
            f"3D-CQR2 requires a cubic grid, got dims {a.grid.dims}")
    return ca_cqr2(vm, a, base_case_size, phase=phase)
