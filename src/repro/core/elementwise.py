"""Distributed elementwise operations (no communication, local flops only).

These wrap the local kernels over every block of a :class:`DistMatrix` and
charge each owning rank's ledger -- the distributed counterparts of the
``axpy``-class lines in the paper's per-line cost tables (e.g. Algorithm 3
line 10, ``Z <- A22 - U``, and line 13, ``W <- -Y22``).
"""

from __future__ import annotations

from repro.kernels.blas import local_add, local_neg, local_scale, local_sub
from repro.utils.validation import require
from repro.vmpi.distmatrix import DistMatrix
from repro.vmpi.machine import VirtualMachine


def _check_conformance(a: DistMatrix, b: DistMatrix) -> None:
    require(a.grid.matches(b.grid), "elementwise operands must share a grid")
    require((a.m, a.n) == (b.m, b.n),
            f"elementwise shape mismatch: {a.m}x{a.n} vs {b.m}x{b.n}")


def dist_add(vm: VirtualMachine, a: DistMatrix, b: DistMatrix, phase: str) -> DistMatrix:
    """``A + B`` blockwise; one flop per local entry per rank."""
    _check_conformance(a, b)
    blocks = {}
    for rank, blk in a.blocks.items():
        out, flops = local_add(blk, b.blocks[rank])
        vm.charge_flops(rank, flops, phase)
        blocks[rank] = out
    return DistMatrix(a.grid, a.m, a.n, blocks)


def dist_sub(vm: VirtualMachine, a: DistMatrix, b: DistMatrix, phase: str) -> DistMatrix:
    """``A - B`` blockwise (Algorithm 3 line 10)."""
    _check_conformance(a, b)
    blocks = {}
    for rank, blk in a.blocks.items():
        out, flops = local_sub(blk, b.blocks[rank])
        vm.charge_flops(rank, flops, phase)
        blocks[rank] = out
    return DistMatrix(a.grid, a.m, a.n, blocks)


def dist_neg(vm: VirtualMachine, a: DistMatrix, phase: str) -> DistMatrix:
    """``-A`` blockwise (Algorithm 3 line 13)."""
    blocks = {}
    for rank, blk in a.blocks.items():
        out, flops = local_neg(blk)
        vm.charge_flops(rank, flops, phase)
        blocks[rank] = out
    return DistMatrix(a.grid, a.m, a.n, blocks)


def dist_scale(vm: VirtualMachine, a: DistMatrix, scalar: float, phase: str) -> DistMatrix:
    """``scalar * A`` blockwise."""
    blocks = {}
    for rank, blk in a.blocks.items():
        out, flops = local_scale(blk, scalar)
        vm.charge_flops(rank, flops, phase)
        blocks[rank] = out
    return DistMatrix(a.grid, a.m, a.n, blocks)
