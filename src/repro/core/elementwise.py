"""Distributed elementwise operations (no communication, local flops only).

These wrap the local kernels over every block of a :class:`DistMatrix` and
charge each owning rank's ledger -- the distributed counterparts of the
``axpy``-class lines in the paper's per-line cost tables (e.g. Algorithm 3
line 10, ``Z <- A22 - U``, and line 13, ``W <- -Y22``).

The cyclic layout is uniform (every rank's local block has the same
shape), so the flop count is identical across ranks and is charged through
one vectorized machine call; the kernel itself runs once per *distinct*
block object, which collapses to a single invocation on shared-block
symbolic matrices.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.kernels.blas import local_add, local_neg, local_scale, local_sub
from repro.utils.validation import require
from repro.vmpi.datatypes import Block
from repro.vmpi.distmatrix import DistMatrix
from repro.vmpi.machine import VirtualMachine


def _check_conformance(a: DistMatrix, b: DistMatrix) -> None:
    require(a.grid.matches(b.grid), "elementwise operands must share a grid")
    require((a.m, a.n) == (b.m, b.n),
            f"elementwise shape mismatch: {a.m}x{a.n} vs {b.m}x{b.n}")


def _map_charged(vm: VirtualMachine, a: DistMatrix, phase: str,
                 kernel: Callable[..., Tuple[Block, float]],
                 b: Optional[DistMatrix] = None) -> DistMatrix:
    """Apply *kernel* blockwise, charging every rank's (uniform) flops at once."""
    shared_a = len(set(map(id, a.blocks.values()))) == 1
    shared_b = b is None or len(set(map(id, b.blocks.values()))) == 1
    if shared_a and shared_b:
        args = ((next(iter(a.blocks.values())),) if b is None
                else (next(iter(a.blocks.values())), next(iter(b.blocks.values()))))
        out, flops = kernel(*args)
        blocks: Dict[int, Block] = dict.fromkeys(a.blocks, out)
    else:
        blocks = {}
        memo: Dict[Tuple[int, ...], Tuple[Block, float]] = {}
        flops = 0.0
        for rank, blk in a.blocks.items():
            args = (blk,) if b is None else (blk, b.blocks[rank])
            key = tuple(map(id, args))
            hit = memo.get(key)
            if hit is None:
                hit = memo[key] = kernel(*args)
            blocks[rank] = hit[0]
            flops = hit[1]
    ranks = np.fromiter(a.blocks.keys(), dtype=np.intp, count=len(a.blocks))
    vm.charge_flops_group(ranks, flops, phase)
    return DistMatrix(a.grid, a.m, a.n, blocks)


def dist_add(vm: VirtualMachine, a: DistMatrix, b: DistMatrix, phase: str) -> DistMatrix:
    """``A + B`` blockwise; one flop per local entry per rank."""
    _check_conformance(a, b)
    return _map_charged(vm, a, phase, local_add, b)


def dist_sub(vm: VirtualMachine, a: DistMatrix, b: DistMatrix, phase: str) -> DistMatrix:
    """``A - B`` blockwise (Algorithm 3 line 10)."""
    _check_conformance(a, b)
    return _map_charged(vm, a, phase, local_sub, b)


def dist_neg(vm: VirtualMachine, a: DistMatrix, phase: str) -> DistMatrix:
    """``-A`` blockwise (Algorithm 3 line 13)."""
    return _map_charged(vm, a, phase, local_neg)


def dist_scale(vm: VirtualMachine, a: DistMatrix, scalar: float, phase: str) -> DistMatrix:
    """``scalar * A`` blockwise."""
    return _map_charged(vm, a, phase,
                        lambda blk: local_scale(blk, scalar))
