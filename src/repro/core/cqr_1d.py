"""1D-CholeskyQR2 (Algorithms 6-7): the existing parallelization.

The ``m x n`` matrix is partitioned by rows over a 1D grid of ``P``
processors.  Each processor:

1. forms the local Gram contribution ``X = Syrk(A_local)``  (``(m/P) n**2`` flops);
2. joins an ``Allreduce`` of the ``n x n`` Gram matrix  (``2 log P`` messages,
   ``2 n**2`` words);
3. computes ``CholInv`` redundantly  (``n**3`` flops);
4. forms its rows of ``Q = A_local @ R**-1``  (``2 (m/P) n**2`` flops).

This gives the Table I row ``1D-CQR``: ``O(log P)`` latency, ``O(n**2)``
bandwidth, ``O(m n**2 / P + n**3)`` flops -- minimal synchronization, but
the per-processor ``n**2`` memory / ``n**3`` compute terms do not scale,
which is exactly the gap CA-CQR2 closes for matrices that are not extremely
overdetermined.

The grid here is a degenerate ``1 x P x 1`` :class:`Grid3D`, so the same
:class:`DistMatrix` machinery (cyclic rows over ``y``) serves unchanged.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.kernels import flops as fl
from repro.kernels.blas import local_mm, local_syrk
from repro.kernels.cholesky import local_cholinv
from repro.utils.validation import require
from repro.vmpi.datatypes import Block
from repro.vmpi.distmatrix import DistMatrix, Replicated
from repro.vmpi.machine import VirtualMachine


def _validate_1d(a: DistMatrix) -> None:
    g = a.grid
    require(g.dim_x == 1 and g.dim_z == 1,
            f"1D-CQR expects a 1 x P x 1 grid, got dims {g.dims}")
    require(a.m >= a.n, f"1D-CQR needs a tall matrix, got {a.m}x{a.n}")


def cqr_1d(vm: VirtualMachine, a: DistMatrix,
           phase: str = "cqr1d") -> Tuple[DistMatrix, Replicated]:
    """One parallel CholeskyQR pass (Algorithm 6).

    Returns ``(Q, R)`` where ``Q`` is row-distributed like ``a`` and ``R``
    is an upper-triangular :class:`Replicated` owned by every processor.
    """
    _validate_1d(a)
    g = a.grid
    n = a.n

    # Line 1: local symmetric rank-(m/P) update.
    grams: Dict[int, Block] = {}
    for y in range(g.dim_y):
        rank = g.rank_at(0, y, 0)
        gram, flops = local_syrk(a.blocks[rank])
        vm.charge_flops(rank, flops, f"{phase}.syrk")
        grams[rank] = gram

    # Line 2: Allreduce the n x n Gram matrix over the whole grid.
    comm = g.comm_y(0, 0)
    z_blocks = comm.allreduce(grams, phase=f"{phase}.allreduce")

    # Line 3: redundant CholInv on every processor.  Orchestration economy:
    # factor once (inputs are bitwise identical) but charge every rank.
    any_rank = g.rank_at(0, 0, 0)
    l, y_inv, flops = local_cholinv(z_blocks[any_rank])
    r_blocks: Dict[int, Block] = {}
    rinv_t: Dict[int, Block] = {}
    for yc in range(g.dim_y):
        rank = g.rank_at(0, yc, 0)
        vm.charge_flops(rank, flops, f"{phase}.cholinv")
        r_blocks[rank] = l.transpose()       # R = L.T
        rinv_t[rank] = y_inv                 # Y = R**-T
    r = Replicated((n, n), r_blocks)

    # Line 4: Q_local = A_local @ R**-1 = A_local @ Y.T.  R**-1 is
    # triangular, so the charge is the TRMM rate ((m/P) n**2) rather than a
    # dense GEMM's 2 (m/P) n**2.
    q_blocks: Dict[int, Block] = {}
    for yc in range(g.dim_y):
        rank = g.rank_at(0, yc, 0)
        q_blk, flops = local_mm(a.blocks[rank], rinv_t[rank].transpose())
        vm.charge_flops(rank, flops * fl.TRMM_FRACTION, f"{phase}.apply-rinv")
        q_blocks[rank] = q_blk
    q = DistMatrix(g, a.m, n, q_blocks)
    return q, r


def cqr2_1d(vm: VirtualMachine, a: DistMatrix,
            phase: str = "cqr2-1d") -> Tuple[DistMatrix, Replicated]:
    """1D-CholeskyQR2 (Algorithm 7): two passes plus the ``R = R2 R1`` merge.

    The merge is a redundant sequential triangular-triangular multiply on
    every processor; the paper charges it ``n**3 / 3`` flops (Table IV),
    which we reproduce by charging the dense GEMM rate on the triangle's
    nonzero structure.
    """
    q1, r1 = cqr_1d(vm, a, phase=f"{phase}.pass1")
    q, r2 = cqr_1d(vm, q1, phase=f"{phase}.pass2")

    g = a.grid
    n = a.n
    merged: Dict[int, Block] = {}
    # Merge once numerically, charge every rank (redundant computation).
    any_rank = g.rank_at(0, 0, 0)
    prod, _ = local_mm(r2.block(any_rank), r1.block(any_rank))
    tri_flops = (n ** 3) / 3.0
    for yc in range(g.dim_y):
        rank = g.rank_at(0, yc, 0)
        vm.charge_flops(rank, tri_flops, f"{phase}.merge-r")
        merged[rank] = prod.copy()
    return q, Replicated((n, n), merged)
