"""CFR3D: 3D recursive Cholesky factorization with triangular inverse (Alg. 3).

Given a symmetric positive definite ``n x n`` matrix ``A`` cyclically
distributed (and slice-replicated) on a cubic ``p x p x p`` grid, computes
both ``L`` with ``A = L L.T`` and ``Y = L**-1``, distributed the same way.

The recursion embeds Algorithm 2's two coupled recurrences:

.. math::
    L_{11} &= \\mathrm{Chol}(A_{11}),  &  L_{21} &= A_{21} Y_{11}^T, \\\\
    L_{22} &= \\mathrm{Chol}(A_{22} - L_{21} L_{21}^T), &
    Y_{21} &= -Y_{22} (L_{21} Y_{11}),

with quadrants handled *in place* on the cyclic layout (no redistribution:
a global quadrant is a contiguous local half on every rank) and all
products computed by :func:`~repro.core.mm3d.mm3d` on the full grid.

Base case (``n <= n0``): ``Allgather`` the submatrix over each 2D slice,
then every processor computes ``CholInv`` redundantly (Algorithm 3 lines
1-3).  The base-case size ``n0`` trades synchronization for bandwidth
(Section II-D): the paper's choice ``n0 = n / p**2`` minimizes
communication, giving the Table I cost
``O(p**2 log p) alpha + O(n**2 / p**2) beta + O(n**3 / p**3) gamma``.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.elementwise import dist_neg, dist_sub
from repro.core.mm3d import mm3d
from repro.kernels.cholesky import local_cholinv
from repro.utils.validation import is_power_of_two, require
from repro.vmpi.datatypes import Block, NumericBlock, SymbolicBlock, zeros_block
from repro.vmpi.distmatrix import DistMatrix, dist_transpose
from repro.vmpi.machine import VirtualMachine


def default_base_case(n: int, p: int) -> int:
    """The communication-minimizing base-case size ``n0 = n / p**2``.

    Clamped so the base case is at least one row per face processor
    (``n0 >= p``) and at most ``n``; rounded to the nearest power-of-two
    divisor of ``n`` so the recursion halves cleanly.
    """
    require(n % p == 0, f"n={n} must be divisible by the grid extent p={p}")
    target = max(p, n // (p * p), 1)
    n0 = n
    while n0 // 2 >= target and n0 % 2 == 0 and (n0 // 2) % p == 0:
        n0 //= 2
    return n0


def _validate(a: DistMatrix, base_case_size: int) -> int:
    grid = a.grid
    require(grid.is_cubic, f"CFR3D requires a cubic grid, got dims {grid.dims}")
    require(a.m == a.n, f"CFR3D requires a square matrix, got {a.m}x{a.n}")
    n, p = a.n, grid.dim_x
    require(base_case_size >= 1, f"base_case_size must be >= 1, got {base_case_size}")
    require(n % base_case_size == 0 and is_power_of_two(n // base_case_size),
            f"n={n} must equal base_case_size={base_case_size} times a power of two")
    require(base_case_size % p == 0,
            f"base_case_size={base_case_size} must be divisible by grid extent p={p} "
            "so base-case blocks exist on every rank")
    return p


def cfr3d(vm: VirtualMachine, a: DistMatrix,
          base_case_size: Optional[int] = None,
          phase: str = "cfr3d") -> Tuple[DistMatrix, DistMatrix]:
    """Factor ``A = L L.T`` and invert ``L`` on a cubic grid.

    Parameters
    ----------
    vm:
        Virtual machine charged for all communication and computation.
    a:
        Symmetric positive definite ``n x n`` :class:`DistMatrix` on a cubic
        grid, slice-replicated.
    base_case_size:
        Recursion cutoff ``n0``; defaults to :func:`default_base_case`.
        Must divide ``n`` with a power-of-two quotient and be a multiple of
        the grid extent.
    phase:
        Ledger phase prefix.  Sub-steps appear as ``<phase>.basecase.*``,
        ``<phase>.transpose``, ``<phase>.mm3d-l21`` / ``-l21lt`` / ``-u`` /
        ``-y21``, and ``<phase>.schur``.

    Returns
    -------
    (L, Y):
        Lower-triangular factor and its inverse, both distributed exactly
        like ``a`` (upper halves explicitly zero).
    """
    if base_case_size is None:
        base_case_size = default_base_case(a.n, a.grid.dim_x)
    _validate(a, base_case_size)
    return _cfr3d_recursive(vm, a, base_case_size, phase)


def _cfr3d_recursive(vm: VirtualMachine, a: DistMatrix, n0: int,
                     phase: str) -> Tuple[DistMatrix, DistMatrix]:
    if a.n <= n0:
        return _base_case(vm, a, phase)

    a11 = a.quadrant(0, 0)
    a21 = a.quadrant(1, 0)
    a22 = a.quadrant(1, 1)

    # Line 5: recurse on the leading quadrant.
    l11, y11 = _cfr3d_recursive(vm, a11, n0, phase)

    # Lines 6-7: L21 = A21 @ Y11.T  (global transpose, then MM3D).
    w = dist_transpose(vm, y11, f"{phase}.transpose")
    l21 = mm3d(vm, a21, w, f"{phase}.mm3d-l21")

    # Lines 8-9: U = L21 @ L21.T.
    x = dist_transpose(vm, l21, f"{phase}.transpose")
    u = mm3d(vm, l21, x, f"{phase}.mm3d-l21lt")

    # Line 10: Schur complement Z = A22 - U.
    schur = dist_sub(vm, a22, u, f"{phase}.schur")

    # Line 11: recurse on the trailing quadrant.
    l22, y22 = _cfr3d_recursive(vm, schur, n0, phase)

    # Lines 12-14: Y21 = (-Y22) @ (L21 @ Y11).
    u2 = mm3d(vm, l21, y11, f"{phase}.mm3d-u")
    w2 = dist_neg(vm, y22, f"{phase}.schur")
    y21 = mm3d(vm, w2, u2, f"{phase}.mm3d-y21")

    zero12 = _zero_like(a11)
    l = DistMatrix.assemble_quadrants(l11, zero12, l21, l22)
    y = DistMatrix.assemble_quadrants(y11, zero12, y21, y22)
    return l, y


def _zero_like(template: DistMatrix) -> DistMatrix:
    """An all-zero DistMatrix matching *template* (the L/Y upper quadrant).

    Materializing explicit zeros costs neither communication nor charged
    flops; a real implementation simply would not store the upper half.
    Symbolic zeros are one shared shape-only block.
    """
    if not template.is_numeric:
        shape = (template.local_rows, template.local_cols)
        shared = zeros_block(shape, symbolic=True)
        return DistMatrix(template.grid, template.m, template.n,
                          dict.fromkeys(template.blocks, shared))
    blocks: Dict[int, Block] = {
        rank: zeros_block(blk.shape, False) for rank, blk in template.blocks.items()
    }
    return DistMatrix(template.grid, template.m, template.n, blocks)


def _base_case(vm: VirtualMachine, a: DistMatrix,
               phase: str) -> Tuple[DistMatrix, DistMatrix]:
    """Algorithm 3 lines 1-3: slice Allgather + redundant sequential CholInv."""
    grid = a.grid
    p = grid.dim_x
    n = a.n
    if not a.is_numeric:
        return _base_case_symbolic(vm, a, phase)
    l_blocks: Dict[int, Block] = {}
    y_blocks: Dict[int, Block] = {}
    for z in range(grid.dim_z):
        comm = grid.comm_slice(z)
        contributions = {r: a.blocks[r] for r in comm.ranks}
        gathered = comm.allgather(contributions, phase=f"{phase}.basecase.allgather")
        full = _assemble_slice(gathered, p, n, symbolic=not a.is_numeric)
        # Every processor factors the gathered submatrix redundantly; each
        # then keeps only its own cyclic partition of L and Y.
        l_full, y_full, flops = local_cholinv(full)
        for y_coord in range(grid.dim_y):
            for x_coord in range(grid.dim_x):
                rank = grid.rank_at(x_coord, y_coord, z)
                vm.charge_flops(rank, flops, f"{phase}.basecase.cholinv")
                l_blocks[rank] = _extract_cyclic(l_full, x_coord, y_coord, p)
                y_blocks[rank] = _extract_cyclic(y_full, x_coord, y_coord, p)
        # Note: local_cholinv ran once per slice here for orchestration
        # economy, but the flop charge lands on every rank, matching the
        # redundant computation of the real algorithm.
    l = DistMatrix(grid, n, n, l_blocks)
    y = DistMatrix(grid, n, n, y_blocks)
    return l, y


def _base_case_symbolic(vm: VirtualMachine, a: DistMatrix,
                        phase: str) -> Tuple[DistMatrix, DistMatrix]:
    """Cost-only base case: every 2D slice's Allgather is one disjoint
    group, every rank's redundant CholInv is identical -- one vectorized
    machine call per family, one shared shape-only block per factor."""
    from repro.costmodel import collectives as cc

    grid = a.grid
    p = grid.dim_x
    n = a.n
    slice_size = grid.dim_x * grid.dim_y
    # Slices Pi[:, :, z] are disjoint across z and gather equal volumes.
    slice_groups = grid.ranks.transpose(2, 1, 0).reshape(grid.dim_z, slice_size)
    result_words = slice_size * a.local_rows * a.local_cols
    vm.charge_comm_groups(slice_groups,
                          cc.allgather_cost(result_words, slice_size),
                          f"{phase}.basecase.allgather")
    _, _, flops = local_cholinv(SymbolicBlock((n, n)))
    vm.charge_flops_group(grid.all_ranks_array, flops, f"{phase}.basecase.cholinv")
    shared = SymbolicBlock((n // p, n // p))
    l = DistMatrix(grid, n, n, dict.fromkeys(a.blocks, shared))
    y = DistMatrix(grid, n, n, dict.fromkeys(a.blocks, shared))
    return l, y


def _assemble_slice(gathered, p: int, n: int, symbolic: bool) -> Block:
    """Rebuild the full base-case submatrix from slice-ordered cyclic blocks.

    ``comm_slice`` orders members y-major/x-minor; block ``i`` in the
    gathered list belongs to face coordinates ``(x, y) = (i % p, i // p)``
    and holds ``A[y::p, x::p]``.
    """
    if symbolic:
        return SymbolicBlock((n, n))
    full = np.empty((n, n))
    for idx, blk in enumerate(gathered):
        x, y = idx % p, idx // p
        full[y::p, x::p] = blk.data
    return NumericBlock(full)


def _extract_cyclic(full: Block, x: int, y: int, p: int) -> Block:
    """Cyclic partition ``full[y::p, x::p]`` for face coordinates ``(x, y)``."""
    if isinstance(full, SymbolicBlock):
        n = full.shape[0]
        return SymbolicBlock((n // p, n // p))
    return NumericBlock(np.ascontiguousarray(full.data[y::p, x::p]))  # type: ignore[union-attr]
