"""The paper's algorithms.

* :mod:`repro.core.mm3d`     -- Algorithm 1, 3D SUMMA-style multiplication.
* :mod:`repro.core.cfr3d`    -- Algorithms 2-3, recursive Cholesky + inverse.
* :mod:`repro.core.cqr`      -- Algorithms 4-5, sequential CQR / CQR2.
* :mod:`repro.core.cqr_1d`   -- Algorithms 6-7, the existing 1D parallelization.
* :mod:`repro.core.cacqr`    -- Algorithms 8-9, the tunable-grid CA-CQR / CA-CQR2
  (the paper's primary contribution), plus the cubic-grid 3D-CQR2 special case.
* :mod:`repro.core.shifted`  -- shifted CholeskyQR3 (Section V / reference [3]).
* :mod:`repro.core.tuning`   -- processor-grid selection, including the
  paper's optimal ``m/d = n/c`` rule and a cost-model-driven autotuner.
"""

from repro.core.elementwise import dist_add, dist_sub, dist_neg, dist_scale
from repro.core.mm3d import mm3d
from repro.core.cfr3d import cfr3d, default_base_case
from repro.core.cqr import cqr_sequential, cqr2_sequential, cqr3_sequential
from repro.core.cqr_1d import cqr_1d, cqr2_1d
from repro.core.cacqr import ca_cqr, ca_cqr2, cqr2_3d, CACQRResult
from repro.core.shifted import (
    shifted_cqr_sequential,
    shifted_cqr3_sequential,
    recommended_shift,
    ca_shifted_cqr3,
)
from repro.core.panels import panel_cqr2, panel_cqr2_flops, panel_overhead_ratio
from repro.core.panels_dist import PanelCACQR2Result, ca_panel_cqr2
from repro.core.tuning import (
    GridShape,
    optimal_grid,
    feasible_grids,
    autotune_grid,
    inverse_depth_to_base_case,
)

__all__ = [
    "dist_add",
    "dist_sub",
    "dist_neg",
    "dist_scale",
    "mm3d",
    "cfr3d",
    "default_base_case",
    "cqr_sequential",
    "cqr2_sequential",
    "cqr3_sequential",
    "cqr_1d",
    "cqr2_1d",
    "ca_cqr",
    "ca_cqr2",
    "cqr2_3d",
    "CACQRResult",
    "shifted_cqr_sequential",
    "shifted_cqr3_sequential",
    "recommended_shift",
    "ca_shifted_cqr3",
    "panel_cqr2",
    "panel_cqr2_flops",
    "panel_overhead_ratio",
    "PanelCACQR2Result",
    "ca_panel_cqr2",
    "GridShape",
    "optimal_grid",
    "feasible_grids",
    "autotune_grid",
    "inverse_depth_to_base_case",
]
