"""Panel-blocked CholeskyQR2 -- the paper's Section V future work.

The conclusion proposes "a CA-CQR2 algorithm that operates on subpanels to
reduce computation cost overhead ... for near-square matrices".  The
overhead in question: CQR2 spends ``4 m n**2`` flops against Householder's
``2 m n**2 - (2/3) n**3``, a factor that approaches 3x as ``m -> n``.

Factoring ``A`` in column panels of width ``b`` fixes this: each panel is
orthogonalized with CQR2 (``4 m b**2`` flops) and the trailing matrix is
updated with two GEMMs (``4 m b n_rem`` flops).  Summing over ``n/b``
panels gives

.. math::
    F(b) = 4 m n b + 2 m n (n - b) \\approx 2 m n**2 (1 + b/n),

i.e. the CQR2 overhead shrinks from 2x to ``1 + b/n`` -- at the price of
``n/b``-fold more synchronization, the same latency/compute trade CFR3D's
base case makes.  Numerically this is block Gram-Schmidt with CQR2 panels;
orthogonality degrades with panel coupling, so a cheap second
block-reorthogonalization pass (BCGS2) is applied when requested.

This module provides the sequential reference (:func:`panel_cqr2`) and the
flop model (:func:`panel_cqr2_flops`); the distributed analogue would run
each panel's CQR2 with CA-CQR2 on a ``c x d x c`` grid.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.cqr import cqr2_sequential
from repro.utils.validation import check_positive_int, require


def panel_cqr2(a: np.ndarray, panel_width: int,
               reorthogonalize: bool = True) -> Tuple[np.ndarray, np.ndarray]:
    """QR of ``a`` via CQR2 on column panels with blocked updates.

    Parameters
    ----------
    a:
        Tall ``m x n`` matrix; ``panel_width`` must divide ``n``.
    panel_width:
        Panel width ``b``.  ``b = n`` recovers plain CQR2.
    reorthogonalize:
        Apply one extra block-projection per panel (BCGS2), restoring
        orthogonality to working precision for mildly conditioned inputs.

    Returns
    -------
    (Q, R):
        Explicit factors with ``A = Q R``, ``R`` upper triangular.
    """
    a = np.asarray(a, dtype=np.float64)
    m, n = a.shape
    require(m >= n, f"panel CQR2 needs a tall matrix, got {a.shape}")
    check_positive_int(panel_width, "panel_width")
    require(n % panel_width == 0,
            f"panel_width={panel_width} must divide n={n}")
    b = panel_width
    q = np.zeros((m, n))
    r = np.zeros((n, n))
    work = a.copy()
    for j in range(0, n, b):
        panel = work[:, j:j + b]
        if j > 0 and reorthogonalize:
            # Second Gram-Schmidt pass against all previous panels.
            q_prev = q[:, :j]
            corr = q_prev.T @ panel
            panel = panel - q_prev @ corr
            r[:j, j:j + b] += corr
        q_j, r_jj = cqr2_sequential(panel)
        q[:, j:j + b] = q_j
        r[j:j + b, j:j + b] = r_jj
        if j + b < n:
            trailing = work[:, j + b:]
            w = q_j.T @ trailing
            r[j:j + b, j + b:] = w
            work[:, j + b:] = trailing - q_j @ w
    return q, np.triu(r)


def panel_cqr2_flops(m: int, n: int, panel_width: int) -> float:
    """Leading-order flop count of :func:`panel_cqr2` (no reorthogonalization).

    ``n/b`` panels: CQR2 on each (``4 m b**2``) plus a two-GEMM trailing
    update of the remaining ``n - j - b`` columns (``4 m b (n - j - b)``).
    """
    check_positive_int(panel_width, "panel_width")
    require(n % panel_width == 0, f"panel_width={panel_width} must divide n={n}")
    b = panel_width
    total = 0.0
    for j in range(0, n, b):
        total += 4.0 * m * b * b                   # CQR2 on the panel
        rem = n - j - b
        if rem > 0:
            total += 4.0 * m * b * rem             # W = Q^T C; C -= Q W
    return total


def panel_overhead_ratio(m: int, n: int, panel_width: int) -> float:
    """Flop overhead of panel-CQR2 relative to Householder QR.

    Plain CQR2's ratio is ~2 for tall-skinny and ~3.5 near-square; panels
    push it toward 1 as ``b/n -> 0``.
    """
    from repro.kernels.flops import householder_flops

    return panel_cqr2_flops(m, n, panel_width) / householder_flops(m, n)
