"""Sequential CholeskyQR, CholeskyQR2 and CholeskyQR3 (Algorithms 4-5).

These are the mathematical skeletons every parallel variant implements:

* **CQR**: ``W = A.T A``; ``R.T = Chol(W)``; ``Q = A R**-1``.  Backward
  stable as a factorization but loses orthogonality like ``kappa(A)**2``.
* **CQR2**: run CQR, then run CQR once more on the computed ``Q`` and merge
  the triangular factors (``R = R2 R1``).  Orthogonality matches
  Householder QR provided ``kappa(A) = O(1/sqrt(eps))`` (reference [2]).
* **CQR3**: a third pass, cheap insurance discussed alongside the shifted
  variant of reference [3].

These run on plain numpy arrays; they serve as the reference implementation
for the distributed algorithms' tests and as subjects of the accuracy study
(experiment E12).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.linalg

from repro.kernels.cholesky import CholeskyFailure, _chol_lower  # noqa: F401 - CholeskyFailure re-exported (documented raise type)
from repro.utils.validation import require


def cqr_sequential(a: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """One CholeskyQR pass (Algorithm 4): returns ``(Q, R)`` with ``A = QR``.

    Raises :class:`~repro.kernels.cholesky.CholeskyFailure` when the Gram
    matrix is numerically indefinite (``kappa(A)**2 > 1/eps`` territory).
    """
    a = np.asarray(a, dtype=np.float64)
    require(a.ndim == 2 and a.shape[0] >= a.shape[1],
            f"CQR needs a tall matrix (m >= n), got shape {a.shape}")
    w = a.T @ a
    w = 0.5 * (w + w.T)
    l = _chol_lower(w)            # L = R.T
    y = scipy.linalg.solve_triangular(l, np.eye(a.shape[1]), lower=True)  # Y = R**-T
    q = a @ y.T                   # Q = A R**-1
    return q, l.T


def cqr2_sequential(a: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """CholeskyQR2 (Algorithm 5): two CQR passes, ``R = R2 @ R1``."""
    q1, r1 = cqr_sequential(a)
    q, r2 = cqr_sequential(q1)
    return q, r2 @ r1


def cqr3_sequential(a: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Three CQR passes; the unshifted cousin of shifted CholeskyQR3."""
    q1, r1 = cqr_sequential(a)
    q2, r2 = cqr_sequential(q1)
    q, r3 = cqr_sequential(q2)
    return q, r3 @ (r2 @ r1)
