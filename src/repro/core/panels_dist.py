"""Distributed panel-blocked CA-CQR2 (the Section V subpanel algorithm).

This is the distributed realization of :mod:`repro.core.panels`: factor the
``m x n`` matrix in column panels of width ``b``, each orthogonalized by a
full CA-CQR2 call on the same ``c x d x c`` grid, with the trailing matrix
updated through the *same communication schedule* as the Gram dance:

1. ``W = Q_p.T @ C`` via :func:`~repro.core.cacqr._cross_product_replicated`
   (row broadcast of ``Q_p``'s panels, local GEMM, group reduce, strided
   allreduce, depth broadcast) -- ``W`` lands on every subcube in the
   cyclic layout MM3D expects;
2. ``C <- C - Q_p W`` with one MM3D + elementwise subtraction per subcube.

Compared to plain CA-CQR2 this reduces the flop overhead from ``4 m n**2``
toward ``2 m n**2 (1 + b/n)`` (panel CQR2 cost + GEMM-rate updates) at the
price of ``n/b``-fold more synchronization -- the trade the paper's
conclusion proposes for near-square matrices.

Numerically the scheme is block Gram-Schmidt with CQR2 panels; it is
intended for the well-conditioned regime (the scaling workloads).  The
ill-conditioned regime belongs to :func:`repro.core.shifted.ca_shifted_cqr3`.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.cacqr import _cross_product_replicated, ca_cqr2
from repro.core.elementwise import dist_sub
from repro.core.mm3d import mm3d
from repro.sched import (ChargeProgram, RankFamilyMap, ScheduleRecorder,
                         compiled_replay_enabled)
from repro.utils.validation import check_positive_int, require
from repro.vmpi.datatypes import Block, NumericBlock, SymbolicBlock
from repro.vmpi.distmatrix import DistMatrix
from repro.vmpi.grid import Grid3D
from repro.vmpi.machine import VirtualMachine


@dataclass
class PanelCACQR2Result:
    """Result of :func:`ca_panel_cqr2`.

    ``q`` is distributed like the input; ``r`` is the assembled global
    upper-triangular factor (numeric mode only -- ``None`` for symbolic
    cost runs).
    """

    q: DistMatrix
    r: Optional[np.ndarray]
    panels: int


def _concat_columns(blocks: List[Block]) -> Block:
    """Column-concatenate local panel blocks (structural, no cost)."""
    if isinstance(blocks[0], SymbolicBlock):
        rows = blocks[0].shape[0]
        cols = sum(b.shape[1] for b in blocks)
        return SymbolicBlock((rows, cols))
    return NumericBlock(np.hstack([b.data for b in blocks]))  # type: ignore[union-attr]


@functools.lru_cache(maxsize=8)
def _panel_cqr2_program(c: int, d: int, m: int, b: int,
                        base_case_size: Optional[int],
                        ) -> Tuple[ChargeProgram, Grid3D]:
    """Compile one panel's full-grid CA-CQR2 call.

    Every panel of a given factorization runs the *identical* shape-only
    schedule (same ``m x b`` panel on the same ``c x d x c`` grid), so it
    is recorded once on a same-shaped template machine under the
    placeholder phase prefix ``"@"`` and replayed per panel with the phase
    table rebased -- the per-panel Python orchestration (grid walks,
    block-dict churn, recursion) runs once instead of ``n/b`` times.
    """
    rec = ScheduleRecorder(c * d * c)
    rec_grid = Grid3D.build(rec, c, d, c)
    panel = DistMatrix.symbolic(rec_grid, m, b)
    ca_cqr2(rec, panel, base_case_size, phase="@")
    return rec.program(), rec_grid


@functools.lru_cache(maxsize=256)
def _panel_update_program(c: int, rows_per_subcube: int, b: int,
                          rest_n: int) -> Tuple[ChargeProgram, Grid3D]:
    """Compile one subcube's trailing update ``C <- C - Q_p @ W``.

    The MM3D + elementwise subtraction pair is identical on every
    subcube, so one ``c x c x c`` template recording replays onto all
    ``d/c`` subcubes as a single bound program (collapsed when their
    entry state is symmetric).  Keyed per trailing width ``rest_n`` --
    each panel index has its own -- and memoized across runs.
    """
    rec = ScheduleRecorder(c * c * c)
    rec_grid = Grid3D.build(rec, c, c, c)
    q0 = DistMatrix.symbolic(rec_grid, rows_per_subcube, b)
    w0 = DistMatrix.symbolic(rec_grid, b, rest_n)
    rest0 = DistMatrix.symbolic(rec_grid, rows_per_subcube, rest_n)
    update = mm3d(rec, q0, w0, phase="@.mm3d")
    dist_sub(rec, rest0, update, "@.sub")
    return rec.program(), rec_grid


def _shared_symbolic(g: Grid3D, m: int, n: int) -> DistMatrix:
    """Symbolic DistMatrix whose every rank shares one block object."""
    shared = SymbolicBlock((m // g.dim_y, n // g.dim_x))
    return DistMatrix(g, m, n, dict.fromkeys(g.all_ranks(), shared))


def _ca_panel_cqr2_compiled(vm: VirtualMachine, a: DistMatrix, b: int,
                            base_case_size: Optional[int],
                            phase: str) -> PanelCACQR2Result:
    """Symbolic panel factorization via compiled charge programs.

    Bit-identical to the panel loop: the panel CQR2 program replays once
    per panel (phase table rebased to ``.panel{i}.cqr2``), the Gram-dance
    cross product charges directly (its schedule is one vectorized pass
    already), and the per-subcube trailing update replays family-batched
    across all ``d/c`` subcubes.
    """
    g = a.grid
    c, d = g.dim_x, g.dim_y
    num_panels = a.n // b
    rows_per_subcube = c * (a.m // d)

    program, rec_grid = _panel_cqr2_program(c, d, a.m, b, base_case_size)
    cqr2_bound = program.specialize(RankFamilyMap.from_grids(rec_grid, g))
    for p_idx in range(num_panels):
        cqr2_bound.replay(vm, phases=program.phases_with_prefix(
            "@", f"{phase}.panel{p_idx}.cqr2"))
        rest_n = a.n - (p_idx + 1) * b
        if rest_n == 0:
            break
        # W = Q_p^T @ C through the real Gram dance -- already one
        # vectorized pass over communicator families, so charging it
        # directly is as fast as any replay would be.
        q_p = _shared_symbolic(g, a.m, b)
        rest = _shared_symbolic(g, a.m, rest_n)
        _cross_product_replicated(vm, q_p, rest,
                                  f"{phase}.panel{p_idx}.update",
                                  symmetric=False)
        upd_prog, upd_grid = _panel_update_program(c, rows_per_subcube, b,
                                                   rest_n)
        bound = upd_prog.specialize(RankFamilyMap.subcubes(g, upd_grid))
        bound.replay(vm, phases=upd_prog.phases_with_prefix(
            "@", f"{phase}.panel{p_idx}.update"))
    q = _shared_symbolic(g, a.m, a.n)
    return PanelCACQR2Result(q=q, r=None, panels=num_panels)


def ca_panel_cqr2(vm: VirtualMachine, a: DistMatrix, panel_width: int,
                  base_case_size: Optional[int] = None,
                  phase: str = "panel-cacqr2") -> PanelCACQR2Result:
    """Factor ``A = QR`` with CA-CQR2 panels of width *panel_width*.

    Parameters
    ----------
    vm:
        Virtual machine charged for all communication and computation.
    a:
        Tall ``m x n`` :class:`DistMatrix` on a ``c x d x c`` grid.
    panel_width:
        Panel width ``b``; must be a multiple of ``c`` and divide ``n``.
        ``b = n`` degenerates to one plain CA-CQR2 call.
    base_case_size:
        CFR3D cutoff for the per-panel CA-CQR2 calls (default: optimal for
        the panel width).
    """
    g = a.grid
    c, d = g.dim_x, g.dim_y
    check_positive_int(panel_width, "panel_width")
    require(a.n % panel_width == 0,
            f"panel_width={panel_width} must divide n={a.n}")
    require(panel_width % c == 0,
            f"panel_width={panel_width} must be a multiple of c={c}")
    b = panel_width
    num_panels = a.n // b
    rows_per_subcube = c * (a.m // d)
    numeric = a.is_numeric

    if not numeric and num_panels > 1 and compiled_replay_enabled():
        # Symbolic multi-panel runs replay compiled programs instead of
        # looping the Python orchestration per panel (numeric panels hold
        # distinct data; a single panel is already one plain CQR2 call).
        return _ca_panel_cqr2_compiled(vm, a, b, base_case_size, phase)

    trailing = a
    q_panel_blocks: Dict[int, List[Block]] = {r: [] for r in a.blocks}
    r_global = np.zeros((a.n, a.n)) if numeric else None

    for p_idx in range(num_panels):
        col_lo = p_idx * b
        panel = trailing.column_panel(0, b)
        rest = trailing.column_panel(b, trailing.n) if trailing.n > b else None

        # Orthogonalize the panel with a full CA-CQR2 on the whole grid.
        res = ca_cqr2(vm, panel, base_case_size,
                      phase=f"{phase}.panel{p_idx}.cqr2")
        for rank, blk in res.q.blocks.items():
            q_panel_blocks[rank].append(blk)
        if numeric:
            r_global[col_lo:col_lo + b, col_lo:col_lo + b] = \
                np.triu(res.r.to_global())

        if rest is None:
            break

        # W = Q_p^T @ C through the Gram-dance schedule (full GEMM rate).
        w_blocks = _cross_product_replicated(
            vm, res.q, rest, f"{phase}.panel{p_idx}.update", symmetric=False)

        # Per-subcube: C <- C - Q_p @ W.
        new_rest_blocks: Dict[int, Block] = {}
        for group in range(d // c):
            sub = g.subcube(group)
            w_sub = DistMatrix(sub, b, rest.n,
                               {r: w_blocks[r] for r in sub.all_ranks()})
            q_sub = res.q.reindexed(sub, m=rows_per_subcube)
            rest_sub = rest.reindexed(sub, m=rows_per_subcube)
            update = mm3d(vm, q_sub, w_sub,
                          phase=f"{phase}.panel{p_idx}.update.mm3d")
            new_rest = dist_sub(vm, rest_sub, update,
                                f"{phase}.panel{p_idx}.update.sub")
            new_rest_blocks.update(new_rest.blocks)
            if numeric and group == 0:
                r_global[col_lo:col_lo + b, col_lo + b:] = w_sub.to_global()

        trailing = DistMatrix(g, a.m, rest.n, new_rest_blocks)

    q_blocks = {rank: _concat_columns(parts)
                for rank, parts in q_panel_blocks.items()}
    q = DistMatrix(g, a.m, a.n, q_blocks)
    return PanelCACQR2Result(q=q, r=r_global, panels=num_panels)
