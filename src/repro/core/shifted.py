"""Shifted CholeskyQR (Fukaya et al., reference [3]; the paper's Section V).

Plain CholeskyQR fails outright when ``kappa(A)**2`` overflows the working
precision: the computed Gram matrix is numerically indefinite and the
Cholesky factorization breaks down.  Shifted CholeskyQR regularizes the
Gram matrix with a small diagonal shift

.. math::
    s = 11 (m n + n (n + 1)) \\, u \\, \\|A\\|_2^2

(``u`` the unit round-off), factoring ``A.T A + s I`` instead.  The
resulting ``Q1`` is far from orthogonal but has bounded condition number
(``kappa(Q1) <= 2 sqrt(kappa(A))``-ish), so following with CholeskyQR2
yields **unconditionally stable** QR -- this three-pass combination is
*shifted CholeskyQR3* (sCQR3).

The paper lists evaluating this variant at scale as future work and notes
"minimal modifications are necessary" to CA-CQR2; we implement the
sequential reference here and the distributed version as a thin wrapper in
the top-level API (the shift only changes the Gram matrix's diagonal, a
local operation on each subcube's diagonal blocks).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.linalg

from repro.kernels.cholesky import CholeskyFailure, _chol_lower
from repro.utils.validation import require


def recommended_shift(m: int, n: int, norm2_squared: float,
                      unit_roundoff: float = np.finfo(np.float64).eps / 2) -> float:
    """The shift ``s = 11 (m n + n (n+1)) u ||A||_2**2`` of reference [3]."""
    require(m > 0 and n > 0, f"matrix dims must be positive, got {m}x{n}")
    require(norm2_squared >= 0, f"norm squared must be non-negative, got {norm2_squared}")
    return 11.0 * (m * n + n * (n + 1)) * unit_roundoff * norm2_squared


def shifted_cqr_sequential(a: np.ndarray,
                           shift: Optional[float] = None,
                           ) -> Tuple[np.ndarray, np.ndarray]:
    """One shifted CholeskyQR pass: factor ``A.T A + s I``.

    Returns ``(Q1, R1)`` with ``A approx Q1 R1``; ``Q1`` is *not* close to
    orthogonal, but is well-conditioned enough for CQR2 to finish the job.
    If *shift* is omitted, the Frobenius norm (an upper bound on the
    2-norm) drives :func:`recommended_shift`, avoiding an SVD.
    """
    a = np.asarray(a, dtype=np.float64)
    m, n = a.shape
    require(m >= n, f"shifted CQR needs a tall matrix, got {a.shape}")
    w = a.T @ a
    w = 0.5 * (w + w.T)
    if shift is None:
        shift = recommended_shift(m, n, float(np.linalg.norm(a, "fro") ** 2))
    w[np.diag_indices_from(w)] += shift
    l = _chol_lower(w)
    y = scipy.linalg.solve_triangular(l, np.eye(n), lower=True)
    return a @ y.T, l.T


def shifted_cqr3_sequential(a: np.ndarray, shift: Optional[float] = None,
                            max_shift_passes: int = 4) -> Tuple[np.ndarray, np.ndarray]:
    """Shifted CholeskyQR3: shifted pass(es) + CholeskyQR2 on the result.

    Unconditionally stable (orthogonality at the Householder level) for any
    ``kappa(A)`` representable in the working precision, at ~1.5x the flops
    of CQR2.  One shifted pass reduces the condition number by roughly
    ``sqrt(1/(u * kappa))``; for kappa near ``1/u`` the intermediate factor
    can still be too ill-conditioned for plain CholeskyQR, so the shifted
    pass is **repeated** until CQR2 succeeds (at most *max_shift_passes*
    times -- two passes suffice for any double-precision-representable
    condition number; the cap is defensive).
    """
    from repro.core.cqr import cqr2_sequential
    from repro.kernels.cholesky import CholeskyFailure

    r_total = None
    current = np.asarray(a, dtype=np.float64)
    for attempt in range(max_shift_passes):
        q1, r1 = shifted_cqr_sequential(current, shift if attempt == 0 else None)
        r_total = r1 if r_total is None else r1 @ r_total
        try:
            q, r2 = cqr2_sequential(q1)
            return q, r2 @ r_total
        except CholeskyFailure:
            current = q1
    raise CholeskyFailure(
        f"shifted CholeskyQR did not converge in {max_shift_passes} passes; "
        "the input is numerically rank-deficient")


def ca_shifted_cqr3(vm, a, base_case_size=None, phase: str = "sCQR3",
                    max_shift_passes: int = 4):
    """Distributed shifted CholeskyQR3 over a ``c x d x c`` grid.

    The paper's Section V: "minimal modifications are necessary to
    implement shifted Cholesky-QR".  Concretely:

    1. compute ``||A||_F**2`` with one scalar Allreduce over a grid slice
       (each rank already holds its local block);
    2. run one CA-CQR pass with ``shift * I`` added to the distributed Gram
       matrix -- a local update on the diagonal-block owners;
    3. run plain CA-CQR2 on the resulting well-conditioned ``Q1``;
    4. merge the triangular factors with one per-subcube MM3D.

    Retries the shifted pass (like the sequential
    :func:`shifted_cqr3_sequential`) if CQR2 still breaks down.

    Parameters mirror :func:`repro.core.cacqr.ca_cqr2`; returns a
    :class:`repro.core.cacqr.CACQRResult`.
    """
    from repro.core.cacqr import CACQRResult, ca_cqr, ca_cqr2, mm3d
    from repro.kernels import flops as fl
    from repro.kernels.cholesky import CholeskyFailure
    from repro.vmpi.datatypes import NumericBlock

    g = a.grid
    c, d = g.dim_x, g.dim_y

    current = a
    r_chain = None  # list of per-subcube R factors accumulated so far
    for _attempt in range(max_shift_passes):
        # Step 1: ||A||_F^2 via one scalar allreduce over slice z=0
        # (numeric mode; symbolic mode charges the same collective).
        comm = g.comm_slice(0)
        if current.is_numeric:
            contributions = {
                r: NumericBlock(np.array([[float(np.sum(current.blocks[r].data ** 2))]]))
                for r in comm.ranks
            }
            total = comm.allreduce(contributions, phase=f"{phase}.norm-allreduce")
            norm2 = float(total[comm.ranks[0]].data[0, 0])
        else:
            from repro.vmpi.datatypes import SymbolicBlock

            comm.allreduce({r: SymbolicBlock((1, 1)) for r in comm.ranks},
                           phase=f"{phase}.norm-allreduce")
            norm2 = 1.0
        for r in comm.ranks:
            vm.charge_flops(r, 2.0 * current.local_rows * current.local_cols,
                            f"{phase}.norm-local")
        shift = recommended_shift(current.m, current.n, norm2)

        # Step 2: one shifted CA-CQR pass.
        first = ca_cqr(vm, current, base_case_size, phase=f"{phase}.shifted-pass",
                       gram_shift=shift)
        r_chain = first.r_subcubes if r_chain is None else [
            mm3d(vm, new, old, phase=f"{phase}.merge-r.mm3d",
                 flop_fraction=fl.TRI_TRI_FRACTION)
            for new, old in zip(first.r_subcubes, r_chain)
        ]

        # Step 3: CQR2 on the regularized factor; retry with another
        # shifted pass if the Gram matrix is still indefinite.
        try:
            second = ca_cqr2(vm, first.q, base_case_size, phase=f"{phase}.cqr2")
        except CholeskyFailure:
            current = first.q
            continue

        # Step 4: merge R = R_cqr2 @ (R_shift_k ... R_shift_1).
        merged = [
            mm3d(vm, r2, r1, phase=f"{phase}.merge-r.mm3d",
                 flop_fraction=fl.TRI_TRI_FRACTION)
            for r2, r1 in zip(second.r_subcubes, r_chain)
        ]
        return CACQRResult(q=second.q, r=merged[0], r_subcubes=merged)

    raise CholeskyFailure(
        f"distributed shifted CholeskyQR did not converge in {max_shift_passes} "
        "passes; the input is numerically rank-deficient")


def cqr2_with_shift_fallback(a: np.ndarray) -> Tuple[np.ndarray, np.ndarray, bool]:
    """CQR2 with automatic fallback to sCQR3 on Cholesky breakdown.

    Returns ``(Q, R, used_shift)``.  This is the policy a production
    library would ship: pay for the third pass only when the Gram matrix
    actually fails to factor.
    """
    from repro.core.cqr import cqr2_sequential

    try:
        q, r = cqr2_sequential(a)
        return q, r, False
    except CholeskyFailure:
        q, r = shifted_cqr3_sequential(a)
        return q, r, True
