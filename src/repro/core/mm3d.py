"""MM3D: 3D SUMMA-style matrix multiplication (Algorithm 1).

Computes ``C = A B`` on a cubic ``p x p x p`` grid where ``A`` (``m x k``)
and ``B`` (``k x n``) are cyclically distributed over every 2D slice
``Pi[:, :, z]``.  The paper's customizations relative to textbook 3D SUMMA:

* both operands start replicated on every slice (not split along the third
  dimension), and
* the product is **Allreduced along the depth fibers** so every slice ends
  up holding a full distributed copy of ``C`` -- the replication invariant
  the CholeskyQR2 algorithms depend on.

Per-slice schedule (slice ``z`` handles the inner-dimension residue class
``z mod p``):

1. ``Bcast`` ``A``'s local block from ``Pi[z, y, z]`` along each row
   communicator ``Pi[:, y, z]``  -> panel ``X`` (``A``'s columns of residue z);
2. ``Bcast`` ``B``'s local block from ``Pi[x, z, z]`` along each column
   communicator ``Pi[x, :, z]``  -> panel ``Y`` (``B``'s rows of residue z);
3. local multiply ``Z = X @ Y``;
4. ``Allreduce`` ``Z`` along each depth fiber ``Pi[x, y, :]`` -> ``C``.

Costs per processor (as in Table I):
``O(log P)`` latency, ``O((mk + kn + mn)/P**(2/3))`` bandwidth,
``2 m n k / P`` flops.
"""

from __future__ import annotations

from typing import Dict

from repro.costmodel import collectives as cc
from repro.kernels.blas import local_mm
from repro.utils.validation import require
from repro.vmpi.datatypes import Block, SymbolicBlock
from repro.vmpi.distmatrix import DistMatrix
from repro.vmpi.machine import VirtualMachine


def mm3d(vm: VirtualMachine, a: DistMatrix, b: DistMatrix, phase: str = "mm3d",
         flop_fraction: float = 1.0) -> DistMatrix:
    """Multiply two slice-replicated cyclic matrices on a cubic grid.

    Parameters
    ----------
    vm:
        The virtual machine charged for communication and flops.
    a, b:
        Operands on the same cubic grid; ``a`` is ``m x k`` and ``b`` is
        ``k x n``.  Rectangular *matrices* are fine (CA-CQR multiplies an
        ``m_sub x n`` panel by an ``n x n`` inverse); the *grid* must be
        cubic.
    phase:
        Ledger phase prefix; sub-steps are attributed as ``<phase>.bcast-a``,
        ``<phase>.bcast-b``, ``<phase>.local-mm`` and ``<phase>.allreduce``.
    flop_fraction:
        Fraction of the dense ``2mnk`` flop count to charge.  Structured
        operands waste a predictable share of a dense GEMM: multiplying by
        a triangular factor (``Q = A R**-1`` as a TRMM) costs half, a
        triangular-times-triangular merge (``R2 R1``) costs one sixth.  The
        paper's critical-path count ``4 m n**2 + (5/3) n**3`` assumes these
        structure-aware kernels, so the charge follows suit; numeric
        execution still computes the plain product.

    Returns
    -------
    DistMatrix
        ``C = A @ B``, cyclically distributed and replicated on every slice,
        exactly like the inputs.
    """
    require(0.0 < flop_fraction <= 1.0,
            f"flop_fraction must be in (0, 1], got {flop_fraction}")
    grid = a.grid
    require(grid.matches(b.grid), "MM3D operands must live on the same grid")
    require(grid.is_cubic, f"MM3D requires a cubic grid, got dims {grid.dims}")
    require(a.n == b.m, f"MM3D inner dimensions disagree: {a.m}x{a.n} @ {b.m}x{b.n}")
    p = grid.dim_x
    if not a.is_numeric:
        return _mm3d_symbolic(vm, a, b, phase, flop_fraction)

    # Step 1-2: per-slice broadcasts of the residue-z panels.
    x_panels: Dict[int, Block] = {}
    y_panels: Dict[int, Block] = {}
    for z in range(p):
        for y in range(grid.dim_y):
            comm = grid.comm_x(y, z)
            root_block = a.local(z, y, z)
            received = comm.bcast(root_block, root_index=z, phase=f"{phase}.bcast-a")
            x_panels.update(received)
        for x in range(grid.dim_x):
            comm = grid.comm_y(x, z)
            root_block = b.local(x, z, z)
            received = comm.bcast(root_block, root_index=z, phase=f"{phase}.bcast-b")
            y_panels.update(received)

    # Step 3: local multiply on every rank.
    partials: Dict[int, Block] = {}
    for (x, y, z) in grid.coords():
        rank = grid.rank_at(x, y, z)
        prod, flops = local_mm(x_panels[rank], y_panels[rank])
        vm.charge_flops(rank, flops * flop_fraction, f"{phase}.local-mm")
        partials[rank] = prod

    # Step 4: depth-fiber Allreduce sums the residue classes.
    c_blocks: Dict[int, Block] = {}
    for y in range(grid.dim_y):
        for x in range(grid.dim_x):
            comm = grid.comm_z(x, y)
            contributions = {r: partials[r] for r in comm.ranks}
            c_blocks.update(comm.allreduce(contributions, phase=f"{phase}.allreduce"))

    return DistMatrix(grid, a.m, b.n, c_blocks)


def _mm3d_symbolic(vm: VirtualMachine, a: DistMatrix, b: DistMatrix,
                   phase: str, flop_fraction: float) -> DistMatrix:
    """The cost-only schedule of :func:`mm3d`, charged in bulk.

    The cyclic layout is uniform, so every communicator family of a step
    (all row broadcasts, all column broadcasts, all depth Allreduces) is a
    set of pairwise-disjoint equal-cost groups, and every rank's local
    multiply has identical shape.  Each family is charged through one
    vectorized machine call, and each result is one shared shape-only
    block.  Charge-for-charge equivalent to the numeric schedule: disjoint
    groups commute, so clocks and ledgers come out bit-identical.
    """
    grid = a.grid
    ranks = grid.ranks

    # Step 1-2: per-slice broadcasts of the residue-z panels; one machine
    # call per operand covering every (row|column) x slice group.
    x_shape = (a.m // grid.dim_y, a.n // grid.dim_x)
    y_shape = (b.m // grid.dim_y, b.n // grid.dim_x)
    x_words = x_shape[0] * x_shape[1]
    y_words = y_shape[0] * y_shape[1]
    row_groups = ranks.transpose(1, 2, 0).reshape(-1, grid.dim_x)
    col_groups = ranks.transpose(0, 2, 1).reshape(-1, grid.dim_y)
    vm.charge_comm_groups(row_groups, cc.bcast_cost(x_words, grid.dim_x),
                          f"{phase}.bcast-a")
    vm.charge_comm_groups(col_groups, cc.bcast_cost(y_words, grid.dim_y),
                          f"{phase}.bcast-b")

    # Step 3: the local multiply is identical on every rank.
    prod, flops = local_mm(SymbolicBlock(x_shape), SymbolicBlock(y_shape))
    vm.charge_flops_group(grid.all_ranks_array, flops * flop_fraction,
                          f"{phase}.local-mm")

    # Step 4: depth-fiber Allreduce sums the residue classes.
    fiber_groups = ranks.reshape(-1, grid.dim_z)
    vm.charge_comm_groups(fiber_groups, cc.allreduce_cost(prod.words, grid.dim_z),
                          f"{phase}.allreduce")

    shared = SymbolicBlock(prod.shape)
    return DistMatrix(grid, a.m, b.n, dict.fromkeys(a.blocks, shared))
