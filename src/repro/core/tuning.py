"""Processor-grid selection for CA-CQR2 (Section III-B).

The tunable ``c x d x c`` grid is the paper's central knob: ``c = 1`` is
1D-CQR2 (minimal synchronization, non-scalable bandwidth/compute),
``c = P**(1/3)`` is 3D-CQR2 (fully scalable, maximal synchronization), and
the communication-optimal interior point matches the grid to the matrix
aspect ratio, ``m/d = n/c``.

Three selectors are provided:

* :func:`optimal_grid` -- snap the paper's closed-form optimum
  ``c = (P n / m)**(1/3)`` to the nearest feasible grid;
* :func:`feasible_grids` -- enumerate every ``(c, d)`` with ``P = c**2 d``,
  ``c | d``, and the divisibility the cyclic layout needs;
* :func:`autotune_grid` -- evaluate the validated analytic cost model for
  every feasible grid under a machine preset and return the fastest, which
  is how the per-figure "best variant" curves are produced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.costmodel.params import MachineSpec
from repro.core.cfr3d import default_base_case
from repro.utils.validation import check_positive_int, require


@dataclass(frozen=True)
class GridShape:
    """A feasible ``c x d x c`` grid for a given problem."""

    c: int
    d: int

    @property
    def procs(self) -> int:
        return self.c * self.c * self.d

    @property
    def subcubes(self) -> int:
        return self.d // self.c

    def __str__(self) -> str:
        return f"{self.c}x{self.d}x{self.c}"


def inverse_depth_to_base_case(n: int, c: int, inverse_depth: int) -> int:
    """Map the paper's ``InverseDepth`` tuple entry to a CFR3D cutoff ``n0``.

    ``InverseDepth = 0`` is the bandwidth-optimal default ``n0 ~ n/c**2``;
    each additional level halves the base case (computing the inverse at
    one more recursion level), trading ~2x the synchronization of the
    deepest level for less redundant base-case compute.  The result is
    clamped to remain a multiple of ``c`` so base-case blocks exist on
    every rank.
    """
    check_positive_int(n, "n")
    check_positive_int(c, "c")
    require(inverse_depth >= 0, f"inverse_depth must be >= 0, got {inverse_depth}")
    n0 = default_base_case(n, c)
    for _ in range(inverse_depth):
        if n0 % 2 == 0 and (n0 // 2) % c == 0:
            n0 //= 2
        else:
            break
    return n0


def grid_is_feasible(m: int, n: int, shape: GridShape) -> bool:
    """Divisibility checks the cyclic layout needs (see :class:`DistMatrix`)."""
    c, d = shape.c, shape.d
    if d % c != 0:
        return False
    if m % d != 0 or n % c != 0:
        return False
    # CFR3D needs at least one base-case row per face processor.
    if n < c:
        return False
    return True


def feasible_grids(m: int, n: int, procs: int) -> List[GridShape]:
    """All grids ``c x d x c`` with ``c**2 d = procs`` usable for ``m x n``.

    Ordered by increasing ``c`` (1D-most first).
    """
    check_positive_int(procs, "procs")
    out: List[GridShape] = []
    c = 1
    while c * c <= procs:
        if procs % (c * c) == 0:
            d = procs // (c * c)
            shape = GridShape(c=c, d=d)
            if d >= c and grid_is_feasible(m, n, shape):
                out.append(shape)
        c += 1
    return out


def optimal_grid(m: int, n: int, procs: int) -> GridShape:
    """The feasible grid nearest the paper's ``m/d = n/c`` optimum.

    Among feasible grids, minimizes the log-distance of ``c`` to the
    real-valued optimum ``(P n / m)**(1/3)``.
    """
    import math

    grids = feasible_grids(m, n, procs)
    require(len(grids) > 0,
            f"no feasible c x d x c grid for {m}x{n} on P={procs}")
    c_star = max(1.0, (procs * n / m) ** (1.0 / 3.0))
    return min(grids, key=lambda g: abs(math.log(g.c / c_star)))


def autotune_grid(m: int, n: int, procs: int, machine: MachineSpec,
                  inverse_depth: int = 0) -> GridShape:
    """Pick the feasible grid minimizing modeled CA-CQR2 time on *machine*.

    Uses the exact analytic cost model (validated against execution), so
    this is the model-driven analogue of the paper's per-point best-variant
    selection.

    Delegates to the planner (:mod:`repro.plan`) restricted to CA-CQR2 at
    the given inverse depth.  The batched screen is bit-identical to the
    scalar closed forms, so the selection minimizes the same exact
    modeled times over the same candidates as the historical direct
    minimization, while the general search (all algorithms, all
    variants, Pareto reporting) lives in :class:`repro.plan.Planner`.
    """
    from repro.plan import Planner, ProblemSpec

    require(len(feasible_grids(m, n, procs)) > 0,
            f"no feasible c x d x c grid for {m}x{n} on P={procs}")
    problem = ProblemSpec(m=m, n=n, procs=procs, machine=machine,
                          algorithms=("ca_cqr2",),
                          inverse_depths=(inverse_depth,))
    best = Planner(refine=None).plan(problem).best()
    return GridShape(c=best.spec_fields["c"], d=best.spec_fields["d"])
