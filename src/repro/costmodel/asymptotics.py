"""Leading-order cost expressions from Table I of the paper.

Each function returns the Table I ``(latency, bandwidth, flops)`` triple --
*leading-order terms without constants* -- for an ``m x n`` QR (or the
relevant substrate) on ``P`` processors.  They are used by experiment E1,
which fits the exact measured/analytic costs against these shapes across
parameter sweeps and checks the scaling exponents, and by the grid
autotuner's documentation.

=============  =====================  =====================  ======================
algorithm      latency (alpha)        bandwidth (beta)       flops (gamma)
=============  =====================  =====================  ======================
MM3D           ``log P``              ``(mn+nk+mk)/P^(2/3)`` ``mnk/P``
CFR3D          ``P^(2/3) log P``      ``n^2/P^(2/3)``        ``n^3/P``
1D-CQR         ``log P``              ``n^2``                ``mn^2/P + n^3``
3D-CQR         ``P^(2/3) log P``      ``mn/P^(2/3)``         ``mn^2/P``
CA-CQR         ``c^2 log P``          ``mn/(dc) + n^2/c^2``  ``mn^2/(c^2 d) + n^3/c^3``
CA-CQR (opt)   ``(Pn/m)^(2/3) log P`` ``(mn^2/P)^(2/3)``     ``mn^2/P``
=============  =====================  =====================  ======================

CA-CQR2 matches CA-CQR asymptotically (a factor-2 constant).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class AsymptoticCost:
    """A leading-order ``(latency, bandwidth, flops)`` triple (no constants)."""

    latency: float
    bandwidth: float
    flops: float


def _log2(p: float) -> float:
    return math.log2(p) if p > 1 else 1.0


def mm3d_asymptotic(m: float, n: float, k: float, p: float) -> AsymptoticCost:
    """Table I row "MM3D"."""
    return AsymptoticCost(
        latency=_log2(p),
        bandwidth=(m * n + n * k + m * k) / p ** (2.0 / 3.0),
        flops=m * n * k / p,
    )


def cfr3d_asymptotic(n: float, p: float) -> AsymptoticCost:
    """Table I row "CFR3D" (with the bandwidth-optimal base case ``n/P^(2/3)``)."""
    return AsymptoticCost(
        latency=p ** (2.0 / 3.0) * _log2(p),
        bandwidth=n * n / p ** (2.0 / 3.0),
        flops=n ** 3 / p,
    )


def cqr_1d_asymptotic(m: float, n: float, p: float) -> AsymptoticCost:
    """Table I row "1D-CQR"."""
    return AsymptoticCost(
        latency=_log2(p),
        bandwidth=n * n,
        flops=m * n * n / p + n ** 3,
    )


def cqr_3d_asymptotic(m: float, n: float, p: float) -> AsymptoticCost:
    """Table I row "3D-CQR"."""
    return AsymptoticCost(
        latency=p ** (2.0 / 3.0) * _log2(p),
        bandwidth=m * n / p ** (2.0 / 3.0),
        flops=m * n * n / p,
    )


def ca_cqr_asymptotic(m: float, n: float, c: float, d: float) -> AsymptoticCost:
    """Table I row "CA-CQR" on a ``c x d x c`` grid."""
    p = c * c * d
    bandwidth = n * n / (c * c)
    if c > 1:
        bandwidth += m * n / (d * c)
    return AsymptoticCost(
        latency=c * c * _log2(p),
        bandwidth=bandwidth,
        flops=m * n * n / (c * c * d) + n ** 3 / c ** 3,
    )


def ca_cqr_optimal_asymptotic(m: float, n: float, p: float) -> AsymptoticCost:
    """Table I's last row: CA-CQR with the optimal ``m/d = n/c`` grid."""
    return AsymptoticCost(
        latency=(p * n / m) ** (2.0 / 3.0) * _log2(p),
        bandwidth=(m * n * n / p) ** (2.0 / 3.0),
        flops=m * n * n / p,
    )


def optimal_grid_real(m: float, n: float, p: float) -> tuple:
    """Real-valued optimal ``(c, d)`` from ``m/d = n/c`` and ``P = c**2 d``.

    Solving gives ``c = (P n / m)**(1/3)`` and ``d = m c / n``; the integer
    tuner (:mod:`repro.core.tuning`) snaps these to feasible grids.
    """
    c = (p * n / m) ** (1.0 / 3.0)
    d = m * c / n
    return c, d
