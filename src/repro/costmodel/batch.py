"""Vectorized (candidate-batched) analytic cost evaluation.

The planner (:mod:`repro.plan`) screens *hundreds* of candidate
configurations -- every feasible ``c x d x c`` grid times every inverse
depth, every ``pr x pc`` split times every panel width -- before refining
the survivors with exact symbolic-VM replay.  Evaluating the scalar
closed forms in :mod:`repro.costmodel.analytic` one candidate at a time
would already be fast; evaluating them *batched* makes the screen
effectively free and keeps the whole search model-bound, in the same
spirit as the vectorized virtual machine.

Every function here takes **numpy arrays of candidate parameters** and
returns a ``(3, N)`` float64 array of per-candidate
``(messages, words, flops)`` -- one lane per candidate.  The arithmetic
mirrors the scalar functions *operation for operation* (the same
sequence of IEEE-754 additions per lane), so each lane is bit-identical
to the corresponding scalar :class:`~repro.costmodel.ledger.Cost`; the
test suite asserts exact equality, not closeness.  The CFR3D recursion,
whose depth varies per candidate with the base-case size, is unrolled as
a masked level loop: lanes that have reached their full problem size
stop accumulating while deeper lanes continue.
"""

from __future__ import annotations

import numpy as np

MSGS, WORDS, FLOPS = 0, 1, 2


def _as_int_array(values) -> np.ndarray:
    out = np.atleast_1d(np.asarray(values, dtype=np.int64))
    if out.ndim != 1:
        raise ValueError(f"candidate parameters must be 1-D, got shape {out.shape}")
    return out


def _zeros(n: int) -> np.ndarray:
    return np.zeros((3, n), dtype=np.float64)


def log2ceil(p: np.ndarray) -> np.ndarray:
    """Vector form of the butterfly stage count ``ceil(log2 p)`` (0 for p <= 1)."""
    p = np.asarray(p, dtype=np.float64)
    out = np.zeros_like(p)
    mask = p > 1
    out[mask] = np.ceil(np.log2(p[mask]))
    return out


def _add_bcast(cost: np.ndarray, words: np.ndarray, procs: np.ndarray) -> None:
    """Accumulate a butterfly broadcast per lane (free where procs <= 1)."""
    live = procs > 1
    cost[MSGS] += np.where(live, 2.0 * log2ceil(procs), 0.0)
    cost[WORDS] += np.where(live, 2.0 * np.asarray(words, dtype=np.float64), 0.0)


# Reduce and allreduce charge identically to broadcast in the paper's
# butterfly model; keep distinct names so call sites mirror the scalar code.
_add_reduce = _add_bcast
_add_allreduce = _add_bcast


def _add_allgather(cost: np.ndarray, result_words: np.ndarray,
                   procs: np.ndarray) -> None:
    live = procs > 1
    cost[MSGS] += np.where(live, log2ceil(procs), 0.0)
    cost[WORDS] += np.where(live,
                            np.asarray(result_words, dtype=np.float64), 0.0)


def _add_transpose(cost: np.ndarray, words: np.ndarray,
                   procs: np.ndarray) -> None:
    live = procs > 1
    cost[MSGS] += np.where(live, 1.0, 0.0)
    cost[WORDS] += np.where(live, np.asarray(words, dtype=np.float64), 0.0)


def priced_seconds_segments(costs: np.ndarray, rates: np.ndarray,
                            lengths: np.ndarray) -> np.ndarray:
    """Price a segment-concatenated ``(3, sum(lengths))`` cost array.

    Segment *j* (its ``lengths[j]`` lanes) is priced under
    ``rates[:, j] = (alpha_j, beta_j, gamma_j)``.  Broadcasting the
    per-segment rates with :func:`np.repeat` keeps each lane's
    arithmetic identical to the unsegmented
    ``alpha * costs[MSGS] + beta * costs[WORDS] + gamma * costs[FLOPS]``
    -- same three IEEE-754 multiplies and two adds per lane -- so
    pricing many (problem, machine) pairs in one call is bit-identical
    to pricing each pair alone.  This is the lattice planner's screen:
    one stacked count array, every machine's rates applied per segment.
    """
    rates = np.asarray(rates, dtype=np.float64)
    lengths = np.asarray(lengths, dtype=np.int64)
    costs = np.asarray(costs, dtype=np.float64)
    if rates.ndim != 2 or rates.shape[0] != 3 or rates.shape[1] != len(lengths):
        raise ValueError(f"rates must have shape (3, {len(lengths)}), "
                         f"got {rates.shape}")
    total = int(lengths.sum())
    if costs.shape != (3, total):
        raise ValueError(f"costs must have shape (3, {total}), got {costs.shape}")
    alpha = np.repeat(rates[MSGS], lengths)
    beta = np.repeat(rates[WORDS], lengths)
    gamma = np.repeat(rates[FLOPS], lengths)
    return alpha * costs[MSGS] + beta * costs[WORDS] + gamma * costs[FLOPS]


def mm3d_cost_batch(m, k, n, p, flop_fraction: float = 1.0) -> np.ndarray:
    """Batched :func:`~repro.costmodel.analytic.mm3d_cost` over grid extents."""
    m, k, n, p = (_as_int_array(v) for v in np.broadcast_arrays(
        _as_int_array(m), _as_int_array(k), _as_int_array(n), _as_int_array(p)))
    cost = _zeros(len(p))
    _add_bcast(cost, (m // p) * (k // p), p)
    _add_bcast(cost, (k // p) * (n // p), p)
    cost[FLOPS] += (2.0 * (m // p) * (n // p) * (k // p)) * flop_fraction
    _add_allreduce(cost, (m // p) * (n // p), p)
    return cost


def dist_transpose_cost_batch(n, p) -> np.ndarray:
    """Batched :func:`~repro.costmodel.analytic.dist_transpose_cost`."""
    n, p = np.broadcast_arrays(_as_int_array(n), _as_int_array(p))
    cost = _zeros(len(p))
    _add_transpose(cost, (n // p) ** 2, p)
    return cost


def cfr3d_cost_batch(n, p, base_case_size) -> np.ndarray:
    """Batched :func:`~repro.costmodel.analytic.cfr3d_cost`.

    The per-lane recursion depth ``log2(n / n0)`` varies with the
    candidate's base-case size, so the recursion is unrolled bottom-up as
    a masked level loop: every lane starts at its own base case, and each
    level doubles the subproblem of the lanes still below their full
    ``n``, accumulating in exactly the scalar function's addition order
    (two half-size subcosts, two transposes, four MM3D calls, one
    elementwise pass).
    """
    n, p, n0 = (np.ascontiguousarray(v) for v in np.broadcast_arrays(
        _as_int_array(n), _as_int_array(p), _as_int_array(base_case_size)))
    if np.any(n0 < 1):
        raise ValueError("base_case_size must be >= 1")
    lanes = len(p)
    size = np.minimum(n, n0)        # scalar base case triggers at n <= n0
    n0f = size.astype(np.float64)

    cost = _zeros(lanes)
    _add_allgather(cost, size * size, p * p)
    cost[FLOPS] += (2.0 / 3.0) * n0f ** 3 + (1.0 / 3.0) * n0f ** 3

    while np.any(size < n):
        active = size < n
        half = size                  # this level recurses on the current size
        bad = active & (half % p != 0)
        if np.any(bad):
            raise ValueError(
                f"cannot recurse: subproblem sizes {2 * half[bad]} on grid "
                f"extents {p[bad]} (half size not divisible by the grid)")
        level = cost + cost          # two recursive calls, added in order
        level += dist_transpose_cost_batch(half, p)
        level += dist_transpose_cost_batch(half, p)
        mm = mm3d_cost_batch(half, half, half, p)
        for _ in range(4):
            level += mm
        level[FLOPS] += 2.0 * ((half // p) * (half // p)).astype(np.float64)
        cost = np.where(active, level, cost)
        size = np.where(active, size * 2, size)
    return cost


def ca_cqr_cost_batch(m, n, c, d, base_case_size) -> np.ndarray:
    """Batched :func:`~repro.costmodel.analytic.ca_cqr_cost` over grids."""
    m, n, c, d, n0 = (np.ascontiguousarray(v) for v in np.broadcast_arrays(
        _as_int_array(m), _as_int_array(n), _as_int_array(c),
        _as_int_array(d), _as_int_array(base_case_size)))
    if np.any((d % c != 0) | (m % d != 0) | (n % c != 0)):
        raise ValueError("every candidate grid must satisfy c | d, d | m, c | n")
    mloc, nloc = m // d, n // c
    cost = _zeros(len(c))
    _add_bcast(cost, mloc * nloc, c)
    cost[FLOPS] += (2.0 * nloc * nloc * mloc) / 2.0
    _add_reduce(cost, nloc * nloc, c)
    _add_allreduce(cost, nloc * nloc, d // c)
    _add_bcast(cost, nloc * nloc, c)
    cost += cfr3d_cost_batch(n, c, n0)
    cost += dist_transpose_cost_batch(n, c)
    cost += mm3d_cost_batch(c * mloc, n, n, c, flop_fraction=0.5)
    cost += dist_transpose_cost_batch(n, c)
    return cost


def ca_cqr2_cost_batch(m, n, c, d, base_case_size) -> np.ndarray:
    """Batched :func:`~repro.costmodel.analytic.ca_cqr2_cost` over grids."""
    m, n, c, d, n0 = np.broadcast_arrays(
        _as_int_array(m), _as_int_array(n), _as_int_array(c),
        _as_int_array(d), _as_int_array(base_case_size))
    single = ca_cqr_cost_batch(m, n, c, d, n0)
    cost = single + single
    cost += mm3d_cost_batch(n, n, n, c, flop_fraction=1.0 / 6.0)
    return cost


def cqr2_1d_cost_batch(m, n, procs) -> np.ndarray:
    """Batched :func:`~repro.costmodel.analytic.cqr2_1d_cost`."""
    m, n, p = (np.ascontiguousarray(v) for v in np.broadcast_arrays(
        _as_int_array(m), _as_int_array(n), _as_int_array(procs)))
    if np.any(m % p != 0):
        raise ValueError("1D layout needs P | m for every candidate")
    single = _zeros(len(p))
    single[FLOPS] += ((m // p) * n * n).astype(np.float64)
    _add_allreduce(single, n * n, p)
    single[FLOPS] += (2.0 / 3.0) * n.astype(np.float64) ** 3 \
        + (1.0 / 3.0) * n.astype(np.float64) ** 3
    single[FLOPS] += (2.0 * (m // p) * n * n) * 0.5
    cost = single + single
    cost[FLOPS] += n.astype(np.float64) ** 3 / 3.0
    return cost


def tsqr_cost_batch(m, n, procs) -> np.ndarray:
    """Batched :func:`~repro.baselines.tsqr.tsqr_cost`.

    The per-level loop is unrolled with a mask (level counts differ when
    candidates carry different processor counts), matching the scalar
    accumulation order level by level.
    """
    m, n, p = (np.ascontiguousarray(v) for v in np.broadcast_arrays(
        _as_int_array(m), _as_int_array(n), _as_int_array(procs)))
    if np.any((m % p != 0) | (m // p < n)):
        raise ValueError("TSQR needs P | m and m/P >= n for every candidate")
    nf = n.astype(np.float64)
    cost = _zeros(len(p))
    cost[FLOPS] += 2.0 * (m // p) * nf * nf - (2.0 / 3.0) * nf ** 3
    levels = log2ceil(p)
    tri = nf * (nf + 1.0) / 2.0
    for lvl in range(int(levels.max()) if len(levels) else 0):
        live = levels > lvl
        cost[MSGS] += np.where(live, 1.0, 0.0)
        cost[WORDS] += np.where(live, tri, 0.0)
        cost[FLOPS] += np.where(
            live, 2.0 * (2.0 * nf) * nf * nf - (2.0 / 3.0) * nf ** 3, 0.0)
        cost[FLOPS] += np.where(live, 2.0 * (2.0 * nf) * nf * nf, 0.0)
    cost[FLOPS] += 2.0 * (m // p) * nf * nf
    return cost


def pgeqrf_cost_batch(m, n, pr, pc, block_size,
                      kernel_efficiency: float) -> np.ndarray:
    """Batched :func:`~repro.baselines.scalapack_qr.pgeqrf_cost`."""
    m, n, pr, pc, nb = (np.ascontiguousarray(v) for v in np.broadcast_arrays(
        _as_int_array(m), _as_int_array(n), _as_int_array(pr),
        _as_int_array(pc), _as_int_array(block_size)))
    b = np.minimum(nb, n).astype(np.float64)
    mf, nf = m.astype(np.float64), n.astype(np.float64)
    p = (pr * pc).astype(np.float64)
    panels = -(n // -nb.clip(min=1))         # ceil(n / b), integer-exact
    panels = np.where(nb >= n, 1, panels).astype(np.float64)
    cost = _zeros(len(pr))
    cost[MSGS] += 2.0 * nf * log2ceil(pr)
    cost[WORDS] += 2.0 * nf * b
    cost[MSGS] += panels * (2.0 * log2ceil(pc) + 2.0 * log2ceil(pr))
    cost[WORDS] += 2.0 * (mf * nf - nf * nf / 2.0) / pr + (nf * nf) / pc
    cost[FLOPS] += ((2.0 * mf * nf * nf - (2.0 / 3.0) * nf ** 3) / p
                    + 2.0 * b * (mf * nf - nf * nf / 2.0) / pr) / kernel_efficiency
    return cost


def caqr_cost_batch(m, n, pr, pc, block_size) -> np.ndarray:
    """Batched :func:`~repro.baselines.caqr.caqr_cost`."""
    m, n, pr, pc, nb = (np.ascontiguousarray(v) for v in np.broadcast_arrays(
        _as_int_array(m), _as_int_array(n), _as_int_array(pr),
        _as_int_array(pc), _as_int_array(block_size)))
    b = np.minimum(nb, n).astype(np.float64)
    mf, nf = m.astype(np.float64), n.astype(np.float64)
    p = (pr * pc).astype(np.float64)
    panels = -(n // -nb.clip(min=1))
    panels = np.where(nb >= n, 1, panels).astype(np.float64)
    cost = _zeros(len(pr))
    cost[MSGS] += panels * (3.0 * log2ceil(pr) + 2.0 * log2ceil(pc))
    cost[WORDS] += ((b * nf / 2.0 + 1.5 * nf * nf / pc) * log2ceil(pr)
                    + 2.0 * (mf * nf - nf * nf / 2.0) / pr)
    cost[FLOPS] += ((2.0 * mf * nf * nf - (2.0 / 3.0) * nf ** 3) / p
                    + (2.0 / 3.0) * b * b * nf * log2ceil(pr)
                    + b * nf * (3.0 * mf - nf) / (2.0 * pr))
    return cost
