"""Modeled execution time and the paper's Gigaflops/s/node metric.

The paper reports performance as ``Gigaflops/s/node`` computed by dividing
the *Householder* flop count ``2 m n**2 - (2/3) n**3`` by the measured
execution time and the node count -- for CholeskyQR2 too, even though CQR2
actually performs ``4 m n**2 + (5/3) n**3`` flops (Section IV: "ignoring
the extra computation done by CA-CQR2").  :class:`ExecutionModel`
reproduces exactly that convention.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel.ledger import Cost
from repro.costmodel.params import MachineSpec
from repro.utils.validation import require


def householder_qr_flops(m: int, n: int) -> float:
    """``2 m n**2 - (2/3) n**3``: the Gigaflops numerator for *all* algorithms."""
    return 2.0 * m * n * n - (2.0 / 3.0) * n ** 3


def cqr2_flops(m: int, n: int) -> float:
    """``4 m n**2 + (5/3) n**3``: the flops CQR2 variants actually perform
    along the critical path (Section IV)."""
    return 4.0 * m * n * n + (5.0 / 3.0) * n ** 3


@dataclass(frozen=True)
class ExecutionModel:
    """Convert per-processor critical-path costs into seconds and Gflops/s/node."""

    machine: MachineSpec

    def seconds(self, cost: Cost) -> float:
        """Modeled wall-clock for a per-processor critical-path cost triple."""
        return self.machine.cost_params().time(cost.messages, cost.words, cost.flops)

    def gigaflops_per_node(self, m: int, n: int, seconds: float, nodes: int) -> float:
        """The paper's reporting metric (Householder-flop numerator)."""
        require(seconds > 0, f"execution time must be positive, got {seconds}")
        require(nodes > 0, f"node count must be positive, got {nodes}")
        return householder_qr_flops(m, n) / seconds / nodes / 1e9

    def gigaflops_per_node_from_cost(self, m: int, n: int, cost: Cost, nodes: int) -> float:
        """Convenience: cost triple straight to Gflops/s/node."""
        return self.gigaflops_per_node(m, n, self.seconds(cost), nodes)

    def procs(self, nodes: int) -> int:
        """Total MPI processes on *nodes* nodes under this machine's ppn."""
        return nodes * self.machine.procs_per_node
