"""Time-breakdown helper: where do the modeled seconds go?

Splits a cost triple into its latency / bandwidth / compute shares under a
machine preset -- the quantity behind every qualitative statement in the
paper's evaluation ("dominated by a mix of computation and communication
costs", "synchronization ... increasingly dominant effect", etc.).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel.ledger import Cost
from repro.costmodel.params import MachineSpec


@dataclass(frozen=True)
class TimeBreakdown:
    """Seconds attributed to each alpha-beta-gamma term."""

    latency_seconds: float
    bandwidth_seconds: float
    compute_seconds: float

    @property
    def total(self) -> float:
        return self.latency_seconds + self.bandwidth_seconds + self.compute_seconds

    @property
    def dominant(self) -> str:
        """Which term dominates: ``"latency"``, ``"bandwidth"`` or ``"compute"``."""
        shares = {"latency": self.latency_seconds,
                  "bandwidth": self.bandwidth_seconds,
                  "compute": self.compute_seconds}
        return max(shares, key=shares.get)

    def share(self, term: str) -> float:
        """Fraction of total time in *term* (0 when total is 0)."""
        value = {"latency": self.latency_seconds,
                 "bandwidth": self.bandwidth_seconds,
                 "compute": self.compute_seconds}[term]
        return value / self.total if self.total > 0 else 0.0

    def render(self) -> str:
        return (f"latency {self.latency_seconds:.4g}s ({self.share('latency'):.0%})  "
                f"bandwidth {self.bandwidth_seconds:.4g}s ({self.share('bandwidth'):.0%})  "
                f"compute {self.compute_seconds:.4g}s ({self.share('compute'):.0%})")


def breakdown(cost: Cost, machine: MachineSpec) -> TimeBreakdown:
    """Split *cost* into per-term seconds under *machine*."""
    p = machine.cost_params()
    return TimeBreakdown(
        latency_seconds=p.alpha * cost.messages,
        bandwidth_seconds=p.beta * cost.words,
        compute_seconds=p.gamma * cost.flops,
    )
