"""Cost-model parameters and machine presets.

The paper analyzes algorithms in the alpha-beta-gamma model (Section II-A):

* ``alpha`` -- cost of sending or receiving a single message (seconds),
* ``beta``  -- cost of moving one word of data between processors (seconds),
* ``gamma`` -- cost of one floating-point operation (seconds),

with the architectural assumption ``alpha >> beta >> gamma``.

Machine presets encode the constants the paper publishes for its two
testbeds (Section IV-B):

* **Stampede2** (TACC): Intel KNL nodes, > 3 Tflop/s peak per node, Intel
  Omni-Path fat tree with 12.5 GB/s injection bandwidth, 64 MPI processes
  per node in the headline experiments.
* **Blue Waters** (NCSA): Cray XE nodes with 16 Bulldozer FP units,
  313 Gflop/s peak per node, Gemini 3D torus with 9.6 GB/s injection
  bandwidth, 16 MPI processes per node.

The paper's architectural argument is that the ratio of peak flops to
injection bandwidth is ~8x higher on Stampede2 (240 vs 32.6 flops/byte);
communication-avoiding algorithms therefore pay off there and not on Blue
Waters.  The presets below reproduce exactly that ratio.

Two *calibration* fields are deliberately explicit rather than buried in
benchmark code:

* ``sequential_efficiency`` -- fraction of per-core peak that the sequential
  BLAS/LAPACK kernels achieve (the paper's measured Gflops/s/node figures
  correspond to 5-15 percent of peak when flops are counted with the
  Householder formula; the underlying DGEMM efficiency is higher).
* ``alpha`` -- the effective per-message latency, which folds in software
  overhead and network diameter.  Blue Waters' 3D torus has a much larger
  effective latency than Stampede2's fat tree, which is how the paper's
  observation that "the overhead of synchronization is less prevalent on
  Stampede2 than Blue Waters" enters the model.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, replace
from typing import Dict

from repro.utils.validation import check_positive_int, require

#: Bytes per double-precision word.  All word counts in the ledger are in
#: 8-byte words, matching the paper's usage of "words".
WORD_BYTES = 8


@dataclass(frozen=True)
class CostParams:
    """Scalar alpha-beta-gamma rates, in seconds per unit.

    ``alpha`` is seconds per message, ``beta`` seconds per word moved,
    ``gamma`` seconds per flop.
    """

    alpha: float
    beta: float
    gamma: float

    def __post_init__(self) -> None:
        require(self.alpha >= 0 and self.beta >= 0 and self.gamma >= 0,
                f"cost rates must be non-negative, got {self}")

    def time(self, messages: float, words: float, flops: float) -> float:
        """Seconds for a ``(messages, words, flops)`` cost triple."""
        return self.alpha * messages + self.beta * words + self.gamma * flops


@dataclass(frozen=True)
class MachineSpec:
    """A machine preset: published constants plus explicit calibration.

    Attributes
    ----------
    name:
        Human-readable machine name.
    peak_flops_per_node:
        Vendor peak double-precision flop rate per node (flop/s).
    injection_bandwidth:
        Per-node network injection bandwidth (bytes/s), as published.
    procs_per_node:
        MPI processes per node (``ppn`` in the paper's variant tuples).
    alpha:
        Effective per-message latency (seconds), calibration field.
    sequential_efficiency:
        Fraction of per-process peak achieved by sequential kernels,
        calibration field.
    bandwidth_efficiency:
        Effective collective-bandwidth multiplier on the per-process
        injection share ``injection_bandwidth / ppn``.  Values below 1 model
        protocol overhead; values **above 1** model the fact that with many
        processes per node a large fraction of butterfly stages move data
        between co-located processes over shared memory and never touch the
        NIC (with 64 processes/node, the first 6 stages of any blocked-rank
        butterfly are intra-node).  Calibration field.
    """

    name: str
    peak_flops_per_node: float
    injection_bandwidth: float
    procs_per_node: int
    alpha: float
    sequential_efficiency: float = 0.25
    bandwidth_efficiency: float = 1.0
    #: Efficiency of blocked-Householder (ScaLAPACK PGEQRF) kernels relative
    #: to the large-GEMM rate `sequential_efficiency` is calibrated for.
    #: BLAS-2 panel work and skinny updates hurt far more on wide-vector
    #: KNL than on conventional XE cores.  Calibration field.
    qr_kernel_efficiency: float = 0.5

    def __post_init__(self) -> None:
        check_positive_int(self.procs_per_node, "procs_per_node")
        require(self.peak_flops_per_node > 0, "peak_flops_per_node must be positive")
        require(self.injection_bandwidth > 0, "injection_bandwidth must be positive")
        require(0 < self.sequential_efficiency <= 1, "sequential_efficiency must be in (0, 1]")
        require(0 < self.qr_kernel_efficiency <= 1, "qr_kernel_efficiency must be in (0, 1]")
        require(0 < self.bandwidth_efficiency <= 64,
                "bandwidth_efficiency must be in (0, 64] "
                "(values above 1 model intra-node shared-memory stages)")
        require(self.alpha >= 0, "alpha must be non-negative")

    @property
    def flops_per_process(self) -> float:
        """Effective sequential flop rate of one MPI process (flop/s)."""
        return self.peak_flops_per_node * self.sequential_efficiency / self.procs_per_node

    @property
    def words_per_second_per_process(self) -> float:
        """Effective per-process bandwidth (words/s); NIC shared by ppn."""
        bytes_per_s = self.injection_bandwidth * self.bandwidth_efficiency / self.procs_per_node
        return bytes_per_s / WORD_BYTES

    @property
    def flops_to_bandwidth_ratio(self) -> float:
        """Peak flops per byte of injection bandwidth (the paper's 8x lever)."""
        return self.peak_flops_per_node / self.injection_bandwidth

    def cost_params(self) -> CostParams:
        """Per-process alpha-beta-gamma rates implied by this machine."""
        return CostParams(
            alpha=self.alpha,
            beta=1.0 / self.words_per_second_per_process,
            gamma=1.0 / self.flops_per_process,
        )

    def with_ppn(self, procs_per_node: int) -> "MachineSpec":
        """Preset variant with a different process count per node.

        The paper sweeps ``(ppn, tpr)`` combinations; fewer processes per
        node with more threads gives each process a larger share of the NIC
        and of the node's flops.
        """
        return replace(self, procs_per_node=procs_per_node)

    def to_dict(self) -> Dict[str, object]:
        """JSON-able form of every field (see :meth:`from_dict`)."""
        return dataclasses.asdict(self)

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "MachineSpec":
        """Build a machine from its JSON form (the ``--machine-file`` schema).

        Required keys are the published constants (``name``,
        ``peak_flops_per_node``, ``injection_bandwidth``,
        ``procs_per_node``, ``alpha``); the calibration fields keep their
        defaults when omitted.  Unknown keys are rejected so a typo'd
        calibration field fails loudly instead of silently using the
        default.
        """
        require(isinstance(data, dict),
                f"a machine description must be a JSON object, got "
                f"{type(data).__name__}")
        known = {f.name for f in dataclasses.fields(MachineSpec)}
        unknown = sorted(set(data) - known)
        require(not unknown,
                f"unknown machine field(s) {unknown}; known fields: "
                f"{sorted(known)}")
        needed = ("name", "peak_flops_per_node", "injection_bandwidth",
                  "procs_per_node", "alpha")
        missing = sorted(k for k in needed if k not in data)
        require(not missing, f"machine description is missing {missing}")
        return MachineSpec(**data)  # type: ignore[arg-type]


#: Stampede2 (TACC).  3 Tflop/s KNL nodes, 12.5 GB/s OPA injection
#: bandwidth, 64 processes/node in the headline runs.  Peak/injection =
#: 240 flops/byte.
STAMPEDE2 = MachineSpec(
    name="stampede2",
    peak_flops_per_node=3.0e12,
    injection_bandwidth=12.5e9,
    procs_per_node=64,
    alpha=1.9e-5,
    sequential_efficiency=0.16,
    bandwidth_efficiency=4.2,
    qr_kernel_efficiency=0.47,
)

#: Blue Waters (NCSA).  313 Gflop/s XE nodes, 9.6 GB/s Gemini injection
#: bandwidth, 16 processes/node.  Peak/injection = 32.6 flops/byte -- the
#: ~8x lower ratio that makes communication-avoidance unprofitable there.
#: The Gemini torus has a large effective latency (network diameter grows
#: with machine size), reflected in a larger alpha.
BLUE_WATERS = MachineSpec(
    name="blue-waters",
    peak_flops_per_node=313.0e9,
    injection_bandwidth=9.6e9,
    procs_per_node=16,
    alpha=1.5e-6,
    sequential_efficiency=0.26,
    bandwidth_efficiency=4.4,
    qr_kernel_efficiency=0.70,
)

#: Unit-rate machine for pure cost counting: one second per message, per
#: word, and per flop.  Used by tests that compare ledger counts against
#: closed-form cost functions.
ABSTRACT_MACHINE = MachineSpec(
    name="abstract",
    peak_flops_per_node=1.0,
    injection_bandwidth=float(WORD_BYTES),
    procs_per_node=1,
    alpha=1.0,
    sequential_efficiency=1.0,
    bandwidth_efficiency=1.0,
)

_REGISTRY: Dict[str, MachineSpec] = {
    STAMPEDE2.name: STAMPEDE2,
    BLUE_WATERS.name: BLUE_WATERS,
    ABSTRACT_MACHINE.name: ABSTRACT_MACHINE,
}


def machine_by_name(name: str) -> MachineSpec:
    """Look up a machine preset by name (``stampede2``, ``blue-waters``, ``abstract``)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown machine {name!r}; known machines: {known}") from None
