"""The alpha-beta-gamma cost model (Section II-A of the paper).

This package has four layers:

* :mod:`repro.costmodel.params` -- the model parameters ``(alpha, beta,
  gamma)`` and machine presets carrying the paper's published constants for
  Stampede2 and Blue Waters.
* :mod:`repro.costmodel.collectives` -- butterfly-schedule cost formulas for
  Transpose / Bcast / Reduce / Allreduce / Allgather (Section II-B).
* :mod:`repro.costmodel.ledger` -- per-rank cost accounting used by the
  virtual-MPI runtime, with named phase attribution so the paper's per-line
  cost tables (Tables II-VI) can be re-derived from measurements.
* :mod:`repro.costmodel.analytic` / :mod:`repro.costmodel.asymptotics` --
  exact closed-form cost functions that mirror each algorithm's communication
  schedule (validated against the executed ledger in the test suite) and the
  leading-order Table-I expressions.
* :mod:`repro.costmodel.performance` -- conversion of cost triples into
  modeled execution time and the paper's Gigaflops/s/node metric.
"""

from repro.costmodel.params import (
    CostParams,
    MachineSpec,
    STAMPEDE2,
    BLUE_WATERS,
    ABSTRACT_MACHINE,
    machine_by_name,
)
from repro.costmodel.collectives import (
    CollectiveCost,
    delta,
    bcast_cost,
    reduce_cost,
    allreduce_cost,
    allgather_cost,
    transpose_cost,
    point_to_point_cost,
)
from repro.costmodel.ledger import Cost, Ledger, CostReport
from repro.costmodel.performance import ExecutionModel, householder_qr_flops, cqr2_flops
from repro.costmodel.breakdown import TimeBreakdown, breakdown
from repro.costmodel.memory import (
    ca_cqr2_memory,
    cqr2_1d_memory,
    pgeqrf_memory,
    replication_overhead,
)

__all__ = [
    "CostParams",
    "MachineSpec",
    "STAMPEDE2",
    "BLUE_WATERS",
    "ABSTRACT_MACHINE",
    "machine_by_name",
    "CollectiveCost",
    "delta",
    "bcast_cost",
    "reduce_cost",
    "allreduce_cost",
    "allgather_cost",
    "transpose_cost",
    "point_to_point_cost",
    "Cost",
    "Ledger",
    "CostReport",
    "ExecutionModel",
    "householder_qr_flops",
    "cqr2_flops",
    "TimeBreakdown",
    "breakdown",
    "ca_cqr2_memory",
    "cqr2_1d_memory",
    "pgeqrf_memory",
    "replication_overhead",
]
