"""Per-process memory-footprint model (words).

The paper's Section III-B: "The overall memory footprint is
``mn/dc + n**2/c**2``" per process for CA-CQR2, and Section IV: "the
parameter ``c`` determines the memory footprint overhead; the more
replication being used (``c``), the larger the expected communication
improvement (``sqrt(c)``) over 2D algorithms".  These functions quantify
that replication-for-bandwidth trade (experiment E14's ablation), with
constants counting the live operands of our implementation:

* CA-CQR2 keeps, per rank: the local ``A`` panel, the broadcast panel
  ``W``, the Gram block and its reduction temporaries, and CFR3D's
  ``L``/``Y`` plus MM3D panels -- a small constant times the two leading
  terms.
* 1D-CQR2 keeps ``mn/P`` plus three full ``n x n`` triangles.
* PGEQRF keeps its ``mn/P`` tile plus a panel and a ``W`` buffer.
"""

from __future__ import annotations

from repro.utils.validation import check_positive_int, require

#: Live copies of the local A-panel CA-CQR2 holds at its peak (A, W, Q).
_CA_PANEL_COPIES = 3.0
#: Live n/c x n/c Gram-sized blocks at CFR3D's peak (A, L, Y, temporaries).
_CA_GRAM_COPIES = 6.0


def ca_cqr2_memory(m: int, n: int, c: int, d: int) -> float:
    """Peak words per process for CA-CQR2 on a ``c x d x c`` grid."""
    check_positive_int(c, "c")
    check_positive_int(d, "d")
    require(m % d == 0 and n % c == 0, f"matrix {m}x{n} must fit grid c={c}, d={d}")
    panel = (m // d) * (n // c)
    gram = (n // c) * (n // c)
    return _CA_PANEL_COPIES * panel + _CA_GRAM_COPIES * gram


def cqr2_1d_memory(m: int, n: int, procs: int) -> float:
    """Peak words per process for 1D-CQR2 (the non-scaling ``n**2`` term)."""
    check_positive_int(procs, "procs")
    require(m % procs == 0, f"m={m} must be divisible by P={procs}")
    return _CA_PANEL_COPIES * (m // procs) * n + 3.0 * n * n


def pgeqrf_memory(m: int, n: int, pr: int, pc: int, block_size: int) -> float:
    """Peak words per process for 2D blocked Householder QR."""
    check_positive_int(pr, "pr")
    check_positive_int(pc, "pc")
    tile = (m / pr) * (n / pc)
    panel = (m / pr) * block_size
    w = block_size * (n / pc)
    return 2.0 * tile + panel + w


def replication_overhead(m: int, n: int, c: int, d: int) -> float:
    """Memory of CA-CQR2 relative to the replication-free 2D footprint.

    The 2D baseline stores ``mn/P`` words per process; CA-CQR2's ``c``-fold
    depth replication plus the Gram copies cost a factor ~``c`` more for
    tall matrices -- the price of the ``sqrt(c)`` bandwidth reduction.
    """
    p = c * c * d
    return ca_cqr2_memory(m, n, c, d) / (m * n / p)
