"""Collective-communication cost formulas (Section II-B of the paper).

The paper assumes butterfly-network collective schedules, which are optimal
or near-optimal in the alpha-beta-gamma model, and charges:

====================  =======================================
Collective            Cost
====================  =======================================
``Transpose(n, P)``   ``delta(P) * (alpha + n * beta)``
``Bcast(n, P)``       ``2 log2(P) * alpha + 2 n delta(P) * beta``
``Reduce(n, P)``      ``2 log2(P) * alpha + 2 n delta(P) * beta``
``Allreduce(n, P)``   ``2 log2(P) * alpha + 2 n delta(P) * beta``
``Allgather(n, P)``   ``log2(P) * alpha + n delta(P) * beta``
====================  =======================================

where ``n`` is the number of words in the *result* buffer and ``delta(P)``
is 0 for ``P <= 1`` and 1 otherwise (a collective over one process is free).
Computation inside reductions is disregarded, per the paper's
``beta >> gamma`` assumption.

These functions are the single source of truth for communication charges:
both the virtual-MPI runtime (which executes data movement) and the analytic
cost functions (which only sum formulas) call them, so the two paths agree
by construction and the test suite verifies they do.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.validation import check_positive_int, require


def delta(p: int) -> int:
    """The paper's indicator ``delta``: 0 if ``p <= 1`` else 1."""
    return 0 if p <= 1 else 1


def _log2ceil(p: int) -> float:
    """``log2(p)`` rounded up to an integer number of butterfly stages.

    The paper writes ``log2 P`` for power-of-two groups; for non-powers of
    two a butterfly needs ``ceil(log2 P)`` stages.
    """
    return float(math.ceil(math.log2(p))) if p > 1 else 0.0


@dataclass(frozen=True)
class CollectiveCost:
    """A ``(messages, words)`` charge for one collective call."""

    messages: float
    words: float

    def __add__(self, other: "CollectiveCost") -> "CollectiveCost":
        return CollectiveCost(self.messages + other.messages, self.words + other.words)

    def __mul__(self, k: float) -> "CollectiveCost":
        return CollectiveCost(self.messages * k, self.words * k)

    __rmul__ = __mul__


#: Zero-cost constant for degenerate (single-process) collectives.
FREE = CollectiveCost(0.0, 0.0)


def _check(words: float, procs: int) -> None:
    require(words >= 0, f"word count must be non-negative, got {words}")
    check_positive_int(procs, "procs")


def bcast_cost(words: float, procs: int) -> CollectiveCost:
    """Butterfly broadcast (scatter + allgather): ``2 log2 P`` messages, ``2n`` words."""
    _check(words, procs)
    if procs <= 1:
        return FREE
    return CollectiveCost(2.0 * _log2ceil(procs), 2.0 * words)


def reduce_cost(words: float, procs: int) -> CollectiveCost:
    """Butterfly reduction (reduce-scatter + gather): same cost as Bcast."""
    _check(words, procs)
    if procs <= 1:
        return FREE
    return CollectiveCost(2.0 * _log2ceil(procs), 2.0 * words)


def allreduce_cost(words: float, procs: int) -> CollectiveCost:
    """Butterfly allreduce (reduce-scatter + allgather): same cost as Bcast."""
    _check(words, procs)
    if procs <= 1:
        return FREE
    return CollectiveCost(2.0 * _log2ceil(procs), 2.0 * words)


def allgather_cost(result_words: float, procs: int) -> CollectiveCost:
    """Butterfly allgather: ``log2 P`` messages, ``n`` result words."""
    _check(result_words, procs)
    if procs <= 1:
        return FREE
    return CollectiveCost(_log2ceil(procs), float(result_words))


def transpose_cost(words: float, procs: int) -> CollectiveCost:
    """Pairwise exchange with the transpose partner: one message of ``n`` words.

    ``procs`` is the size of the communicator within which the exchange
    happens; it only matters through ``delta`` (a self-exchange on the grid
    diagonal is free).
    """
    _check(words, procs)
    if procs <= 1:
        return FREE
    return CollectiveCost(1.0, float(words))


def point_to_point_cost(words: float) -> CollectiveCost:
    """A single send/receive of ``words`` words."""
    require(words >= 0, f"word count must be non-negative, got {words}")
    return CollectiveCost(1.0, float(words))
