"""Exact closed-form cost functions mirroring each algorithm's schedule.

Every function returns the **per-processor critical-path**
``(messages, words, flops)`` :class:`~repro.costmodel.ledger.Cost` that the
virtual-MPI execution of the same algorithm charges to its busiest rank.
The mirror is exact, not asymptotic: the test suite runs the algorithms
symbolically and asserts the measured ledger equals these formulas.

This gives the benchmark harness a second, fast path: the paper's
experiments reach ``P = 65536`` processes and ``m = 2**25`` rows, too many
virtual ranks to orchestrate per-block in Python, but the analytic
functions evaluate in microseconds at any scale -- and they are *validated*
against real executions at moderate scale.

Cost conventions match :mod:`repro.costmodel.collectives` and
:mod:`repro.kernels.flops` exactly (butterfly collectives, the paper's flop
constants).
"""

from __future__ import annotations

from repro.costmodel import collectives as cc
from repro.costmodel.ledger import Cost
from repro.kernels import flops as fl
from repro.utils.validation import require


def _add_comm(cost: Cost, coll: cc.CollectiveCost, times: float = 1.0) -> None:
    cost.add(messages=coll.messages * times, words=coll.words * times)


def mm3d_cost(m: int, k: int, n: int, p: int, flop_fraction: float = 1.0) -> Cost:
    """MM3D of ``(m x k) @ (k x n)`` on a cubic ``p**3`` grid (Algorithm 1).

    Per rank: one row broadcast of an ``(m/p)(k/p)`` panel, one column
    broadcast of ``(k/p)(n/p)``, a local GEMM, and one depth Allreduce of
    ``(m/p)(n/p)``.  ``flop_fraction`` mirrors the executed path's
    structure-aware flop charging (TRMM = 1/2, triangular-triangular = 1/6).
    """
    require(m % p == 0 and k % p == 0 and n % p == 0,
            f"MM3D dims ({m},{k},{n}) must be divisible by grid extent {p}")
    cost = Cost()
    _add_comm(cost, cc.bcast_cost((m // p) * (k // p), p))
    _add_comm(cost, cc.bcast_cost((k // p) * (n // p), p))
    cost.add(flops=fl.mm_flops(m // p, n // p, k // p) * flop_fraction)
    _add_comm(cost, cc.allreduce_cost((m // p) * (n // p), p))
    return cost


def dist_transpose_cost(n: int, p: int) -> Cost:
    """Global transpose of an ``n x n`` cyclic matrix on a ``p**3`` grid.

    One pairwise exchange of the ``(n/p)**2`` local block (free on the
    diagonal; the critical-path rank is off-diagonal).
    """
    require(n % p == 0, f"n={n} must be divisible by grid extent {p}")
    cost = Cost()
    _add_comm(cost, cc.transpose_cost((n // p) ** 2, p))
    return cost


def cfr3d_cost(n: int, p: int, base_case_size: int) -> Cost:
    """CFR3D of ``n x n`` on a ``p**3`` grid with recursion cutoff ``n0``.

    Mirrors Algorithm 3: the base case is a slice Allgather of the full
    ``n0 x n0`` submatrix over ``p**2`` processors plus a redundant
    sequential CholInv (``n0**3`` flops); each recursive level adds two
    global transposes, four half-size MM3D calls, and two elementwise
    passes over the ``(n/2p)**2`` local quadrant (the Schur subtraction of
    line 10 and the negation of line 13).
    """
    require(base_case_size >= 1, "base_case_size must be >= 1")
    if n <= base_case_size:
        cost = Cost()
        _add_comm(cost, cc.allgather_cost(n * n, p * p))
        cost.add(flops=fl.cholinv_flops(n))
        return cost
    require(n % 2 == 0 and (n // 2) % p == 0,
            f"cannot recurse: n={n} on grid extent {p}")
    half = n // 2
    cost = Cost()
    # Two recursive calls (A11 and the Schur complement).
    sub = cfr3d_cost(half, p, base_case_size)
    cost.add_cost(sub)
    cost.add_cost(sub)
    # Lines 6, 8: transposes of Y11 and L21.
    cost.add_cost(dist_transpose_cost(half, p))
    cost.add_cost(dist_transpose_cost(half, p))
    # Lines 7, 9, 12, 14: four MM3D calls on n/2 quadrants.
    mm = mm3d_cost(half, half, half, p)
    for _ in range(4):
        cost.add_cost(mm)
    # Line 10 (Schur subtraction) and line 13 (negation): one flop/entry.
    cost.add(flops=2.0 * fl.elementwise_flops(half // p, half // p))
    return cost


def cqr_1d_cost(m: int, n: int, procs: int) -> Cost:
    """1D-CQR (Algorithm 6) on a 1D grid of ``procs`` processors."""
    require(m % procs == 0, f"m={m} must be divisible by P={procs}")
    cost = Cost()
    cost.add(flops=fl.syrk_flops(m // procs, n))
    _add_comm(cost, cc.allreduce_cost(n * n, procs))
    cost.add(flops=fl.cholinv_flops(n))
    cost.add(flops=fl.mm_flops(m // procs, n, n) * fl.TRMM_FRACTION)
    return cost


def cqr2_1d_cost(m: int, n: int, procs: int) -> Cost:
    """1D-CQR2 (Algorithm 7): two passes plus the redundant ``R2 R1`` merge."""
    cost = Cost()
    single = cqr_1d_cost(m, n, procs)
    cost.add_cost(single)
    cost.add_cost(single)
    cost.add(flops=(n ** 3) / 3.0)
    return cost


def ca_cqr_cost(m: int, n: int, c: int, d: int, base_case_size: int) -> Cost:
    """CA-CQR (Algorithm 8) on a ``c x d x c`` grid.

    Per rank: the five-step Gram dance (row broadcast, local
    ``W.T A`` GEMM, contiguous-group reduce, strided allreduce over the
    ``d/c`` group roots, depth broadcast), then the per-subcube CFR3D, the
    ``R**-T -> R**-1`` transpose, the Q-forming MM3D, and the R-forming
    transpose.
    """
    require(d % c == 0, f"d={d} must be a multiple of c={c}")
    require(m % d == 0 and n % c == 0, f"matrix {m}x{n} must fit grid c={c}, d={d}")
    mloc, nloc = m // d, n // c
    cost = Cost()
    # Line 1: row broadcast of the local panel.
    _add_comm(cost, cc.bcast_cost(mloc * nloc, c))
    # Line 2: local X = W.T @ A, charged at the symmetric (Syrk) rate.
    cost.add(flops=fl.mm_flops(nloc, nloc, mloc) / 2.0)
    # Line 3: contiguous-group reduce of the n/c x n/c partial.
    _add_comm(cost, cc.reduce_cost(nloc * nloc, c))
    # Line 4: strided allreduce across the d/c group roots.
    _add_comm(cost, cc.allreduce_cost(nloc * nloc, d // c))
    # Line 5: depth broadcast.
    _add_comm(cost, cc.bcast_cost(nloc * nloc, c))
    # Line 7: CFR3D on the cubic subcube.
    cost.add_cost(cfr3d_cost(n, c, base_case_size))
    # Line 8: R**-T transpose + Q = A R**-1 MM3D (TRMM rate) on the subcube.
    cost.add_cost(dist_transpose_cost(n, c))
    cost.add_cost(mm3d_cost(c * mloc, n, n, c, flop_fraction=fl.TRMM_FRACTION))
    # Returning R = L.T costs one more transpose (implementation choice,
    # charged by the executed path as form-r.transpose).
    cost.add_cost(dist_transpose_cost(n, c))
    return cost


def ca_cqr2_cost(m: int, n: int, c: int, d: int, base_case_size: int) -> Cost:
    """CA-CQR2 (Algorithm 9): two CA-CQR passes + per-subcube MM3D merge."""
    cost = Cost()
    single = ca_cqr_cost(m, n, c, d, base_case_size)
    cost.add_cost(single)
    cost.add_cost(single)
    cost.add_cost(mm3d_cost(n, n, n, c, flop_fraction=fl.TRI_TRI_FRACTION))
    return cost


def cqr2_3d_cost(m: int, n: int, p: int, base_case_size: int) -> Cost:
    """3D-CQR2: the cubic special case ``c = d = p`` of CA-CQR2."""
    return ca_cqr2_cost(m, n, p, p, base_case_size)
