"""Cost accounting with named phase attribution.

The virtual machine (:mod:`repro.vmpi.machine`) accumulates communication
costs (messages + words, from :mod:`repro.costmodel.collectives`) and
computation costs (flops, from the kernels layer) into **array-backed
ledger planes**: per interned phase, a ``(3, num_ranks)`` numpy plane of
``(messages, words, flops)`` per rank.  Each charge carries a *phase*
label (e.g. ``"cfr3d.mm3d.bcast"``) so the paper's per-line cost tables
(Tables II-VI) can be recovered from a run by grouping ledger entries.

This module holds the *views* over that state:

* :class:`Ledger` -- a standalone per-rank account (dict-of-phases), kept
  for direct use and tests; the machine no longer allocates one per rank.
* :class:`LedgerView` -- the read-only per-rank facade the machine's
  ``ledger_of`` returns, presenting one rank's column of the ledger planes
  through the same ``total`` / ``phases`` / ``phase_total`` API.
* :class:`CostReport` -- the aggregate over all ranks, computed by numpy
  reductions in :meth:`repro.vmpi.machine.VirtualMachine.report`:

  * ``max_*`` -- the maximum over ranks, the right statistic for the paper's
    per-processor cost expressions (all algorithms here are load balanced, so
    max and mean are close; tests assert that too);
  * ``total_*`` -- sums over ranks, useful for volume sanity checks;
  * ``critical_path_time`` -- the BSP critical path maintained by the virtual
    machine's clock vector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Tuple

from repro.costmodel.collectives import CollectiveCost


@dataclass
class Cost:
    """A mutable ``(messages, words, flops)`` cost triple."""

    messages: float = 0.0
    words: float = 0.0
    flops: float = 0.0

    def add(self, messages: float = 0.0, words: float = 0.0, flops: float = 0.0) -> None:
        self.messages += messages
        self.words += words
        self.flops += flops

    def add_cost(self, other: "Cost") -> None:
        self.add(other.messages, other.words, other.flops)

    def copy(self) -> "Cost":
        return Cost(self.messages, self.words, self.flops)

    def as_tuple(self) -> Tuple[float, float, float]:
        return (self.messages, self.words, self.flops)

    def __add__(self, other: "Cost") -> "Cost":
        return Cost(self.messages + other.messages,
                    self.words + other.words,
                    self.flops + other.flops)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Cost):
            return NotImplemented
        return self.as_tuple() == other.as_tuple()

    def isclose(self, other: "Cost", rel: float = 1e-9, abs_tol: float = 1e-6) -> bool:
        """Approximate comparison, tolerant of float accumulation order."""
        import math
        return all(
            math.isclose(a, b, rel_tol=rel, abs_tol=abs_tol)
            for a, b in zip(self.as_tuple(), other.as_tuple())
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cost(messages={self.messages:g}, words={self.words:g}, flops={self.flops:g})"


def prefix_total(phases: Dict[str, Cost], prefix: str) -> Cost:
    """Sum of all *phases* whose dotted name equals or extends *prefix*."""
    out = Cost()
    for name, cost in phases.items():
        if name == prefix or name.startswith(prefix + "."):
            out.add_cost(cost)
    return out


class Ledger:
    """Cost account of a single virtual rank.

    Tracks a running total plus per-phase subtotals.  Phases are free-form
    dotted strings; grouping by prefix recovers coarser attributions.
    """

    __slots__ = ("total", "phases")

    def __init__(self) -> None:
        self.total = Cost()
        self.phases: Dict[str, Cost] = {}

    def charge_comm(self, cost: CollectiveCost, phase: str) -> None:
        """Charge a collective's ``(messages, words)`` under *phase*."""
        self.total.add(messages=cost.messages, words=cost.words)
        self._phase(phase).add(messages=cost.messages, words=cost.words)

    def charge_flops(self, flops: float, phase: str) -> None:
        """Charge local computation under *phase*."""
        if flops < 0:
            raise ValueError(f"flop charge must be non-negative, got {flops}")
        self.total.add(flops=flops)
        self._phase(phase).add(flops=flops)

    def _phase(self, phase: str) -> Cost:
        cost = self.phases.get(phase)
        if cost is None:
            cost = Cost()
            self.phases[phase] = cost
        return cost

    def phase_total(self, prefix: str) -> Cost:
        """Sum of all phases whose dotted name starts with *prefix*."""
        return prefix_total(self.phases, prefix)

    def reset(self) -> None:
        self.total = Cost()
        self.phases = {}


class LedgerView:
    """Read-only per-rank ledger facade over the machine's array planes.

    Returned by :meth:`repro.vmpi.machine.VirtualMachine.ledger_of`; walks
    like a :class:`Ledger` (``total``, ``phases``, ``phase_total``) but
    materializes nothing until read -- it is a window onto one rank's
    column of the ``(phase x rank)`` accumulator, so holding one is free
    even on a million-rank machine.
    """

    __slots__ = ("_vm", "_rank")

    def __init__(self, vm, rank: int):
        self._vm = vm
        self._rank = rank

    @property
    def total(self) -> Cost:
        col = self._vm._total[:, self._rank]
        return Cost(float(col[0]), float(col[1]), float(col[2]))

    @property
    def phases(self) -> Dict[str, Cost]:
        """Per-phase subtotals of this rank (phases this rank was charged under)."""
        vm = self._vm
        out: Dict[str, Cost] = {}
        for pid, name in enumerate(vm._phase_names):
            col = vm._phase_col(pid, self._rank)
            if col is not None:
                out[name] = Cost(float(col[0]), float(col[1]), float(col[2]))
        return out

    def phase_total(self, prefix: str) -> Cost:
        """Sum of all phases whose dotted name starts with *prefix*."""
        return prefix_total(self.phases, prefix)


@dataclass
class CostReport:
    """Aggregate view over all ranks' ledgers plus the BSP clock.

    Produced by :meth:`repro.vmpi.machine.VirtualMachine.report`.
    """

    num_ranks: int
    max_cost: Cost
    mean_cost: Cost
    total_cost: Cost
    critical_path_time: float
    phase_max: Dict[str, Cost] = field(default_factory=dict)

    @property
    def max_messages(self) -> float:
        return self.max_cost.messages

    @property
    def max_words(self) -> float:
        return self.max_cost.words

    @property
    def max_flops(self) -> float:
        return self.max_cost.flops

    def phase_total(self, prefix: str) -> Cost:
        """Max-over-ranks cost of all phases under *prefix*."""
        return prefix_total(self.phase_max, prefix)

    @staticmethod
    def from_ledgers(ledgers: Iterable[Ledger], clocks: Iterable[float]) -> "CostReport":
        ledgers = list(ledgers)
        clocks = list(clocks)
        n = len(ledgers)
        if n == 0:
            raise ValueError("cannot build a CostReport from zero ranks")
        max_cost, total = Cost(), Cost()
        phase_max: Dict[str, Cost] = {}
        for led in ledgers:
            total.add_cost(led.total)
            max_cost.messages = max(max_cost.messages, led.total.messages)
            max_cost.words = max(max_cost.words, led.total.words)
            max_cost.flops = max(max_cost.flops, led.total.flops)
            for name, cost in led.phases.items():
                agg = phase_max.setdefault(name, Cost())
                agg.messages = max(agg.messages, cost.messages)
                agg.words = max(agg.words, cost.words)
                agg.flops = max(agg.flops, cost.flops)
        mean = Cost(total.messages / n, total.words / n, total.flops / n)
        return CostReport(
            num_ranks=n,
            max_cost=max_cost,
            mean_cost=mean,
            total_cost=total,
            critical_path_time=max(clocks) if clocks else 0.0,
            phase_max=phase_max,
        )

    def summary(self) -> str:
        """Human-readable one-screen summary used by examples."""
        lines = [
            f"ranks                : {self.num_ranks}",
            f"critical path (s)    : {self.critical_path_time:.6g}",
            f"max msgs / rank      : {self.max_cost.messages:.6g}",
            f"max words / rank     : {self.max_cost.words:.6g}",
            f"max flops / rank     : {self.max_cost.flops:.6g}",
        ]
        return "\n".join(lines)
