"""Per-line cost tables (the paper's Tables II-VI), as phase-resolved costs.

The paper attributes each algorithm's cost line by line (Table II for
CFR3D, Tables III/IV for 1D-CQR/CQR2, Tables V/VI for CA-CQR/CQR2).  The
virtual-MPI runtime already labels every charge with a dotted phase name;
this module computes the *expected* per-phase totals analytically --
accumulated over the whole recursion, exactly as the executed ledger
accumulates them -- so experiments E2-E4 can print measured-vs-expected
tables and the test suite can assert they agree.

Phase keys match the executed algorithms' labels:

========================  =====================================
Table II (CFR3D) line     phase suffix
========================  =====================================
2 (base-case Allgather)   ``basecase.allgather``
3 (base-case CholInv)     ``basecase.cholinv``
6, 8 (transposes)         ``transpose``
7 (L21 MM3D)              ``mm3d-l21``
9 (L21 L21^T MM3D)        ``mm3d-l21lt``
10, 13 (elementwise)      ``schur``
12 (U MM3D)               ``mm3d-u``
14 (Y21 MM3D)             ``mm3d-y21``
========================  =====================================
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.costmodel import collectives as cc
from repro.costmodel.analytic import dist_transpose_cost, mm3d_cost
from repro.costmodel.ledger import Cost
from repro.kernels import flops as fl


def _acc(table: Dict[str, Cost], key: str, cost: Cost) -> None:
    table.setdefault(key, Cost()).add_cost(cost)


def _comm_cost(coll: cc.CollectiveCost) -> Cost:
    return Cost(messages=coll.messages, words=coll.words)


def cfr3d_line_costs(n: int, p: int, base_case_size: int,
                     prefix: str = "cfr3d") -> Dict[str, Cost]:
    """Table II: per-line (per-phase) costs of CFR3D, recursion-accumulated."""
    table: Dict[str, Cost] = {}
    _cfr3d_lines(n, p, base_case_size, prefix, table)
    return table


def _cfr3d_lines(n: int, p: int, n0: int, prefix: str, table: Dict[str, Cost]) -> None:
    if n <= n0:
        _acc(table, f"{prefix}.basecase.allgather",
             _comm_cost(cc.allgather_cost(n * n, p * p)))
        _acc(table, f"{prefix}.basecase.cholinv", Cost(flops=fl.cholinv_flops(n)))
        return
    half = n // 2
    _cfr3d_lines(half, p, n0, prefix, table)          # line 5
    _acc(table, f"{prefix}.transpose", dist_transpose_cost(half, p))   # line 6
    _acc(table, f"{prefix}.mm3d-l21", mm3d_cost(half, half, half, p))  # line 7
    _acc(table, f"{prefix}.transpose", dist_transpose_cost(half, p))   # line 8
    _acc(table, f"{prefix}.mm3d-l21lt", mm3d_cost(half, half, half, p))  # line 9
    _acc(table, f"{prefix}.schur",
         Cost(flops=fl.elementwise_flops(half // p, half // p)))       # line 10
    _cfr3d_lines(half, p, n0, prefix, table)          # line 11
    _acc(table, f"{prefix}.mm3d-u", mm3d_cost(half, half, half, p))    # line 12
    _acc(table, f"{prefix}.schur",
         Cost(flops=fl.elementwise_flops(half // p, half // p)))       # line 13
    _acc(table, f"{prefix}.mm3d-y21", mm3d_cost(half, half, half, p))  # line 14


def cqr_1d_line_costs(m: int, n: int, procs: int,
                      prefix: str = "cqr1d") -> Dict[str, Cost]:
    """Table III: per-line costs of 1D-CQR."""
    return {
        f"{prefix}.syrk": Cost(flops=fl.syrk_flops(m // procs, n)),
        f"{prefix}.allreduce": _comm_cost(cc.allreduce_cost(n * n, procs)),
        f"{prefix}.cholinv": Cost(flops=fl.cholinv_flops(n)),
        f"{prefix}.apply-rinv": Cost(flops=fl.mm_flops(m // procs, n, n)
                                     * fl.TRMM_FRACTION),
    }


def cqr2_1d_line_costs(m: int, n: int, procs: int,
                       prefix: str = "cqr2-1d") -> Dict[str, Cost]:
    """Table IV: per-line costs of 1D-CQR2 (two passes + merge)."""
    table: Dict[str, Cost] = {}
    for sub, line in cqr_1d_line_costs(m, n, procs, f"{prefix}.pass1").items():
        table[sub] = line
    for sub, line in cqr_1d_line_costs(m, n, procs, f"{prefix}.pass2").items():
        table[sub] = line
    table[f"{prefix}.merge-r"] = Cost(flops=(n ** 3) / 3.0)
    return table


def ca_cqr_line_costs(m: int, n: int, c: int, d: int, base_case_size: int,
                      prefix: str = "cacqr") -> Dict[str, Cost]:
    """Table V: per-line costs of CA-CQR (Gram dance + CFR3D + Q/R forming)."""
    mloc, nloc = m // d, n // c
    table: Dict[str, Cost] = {
        f"{prefix}.bcast-w": _comm_cost(cc.bcast_cost(mloc * nloc, c)),
        f"{prefix}.local-gram": Cost(flops=fl.mm_flops(nloc, nloc, mloc) / 2.0),
        f"{prefix}.reduce-group": _comm_cost(cc.reduce_cost(nloc * nloc, c)),
        f"{prefix}.allreduce-roots": _comm_cost(cc.allreduce_cost(nloc * nloc, d // c)),
        f"{prefix}.bcast-depth": _comm_cost(cc.bcast_cost(nloc * nloc, c)),
    }
    for key, cost in cfr3d_line_costs(n, c, base_case_size, f"{prefix}.cfr3d").items():
        table[key] = cost
    q_cost = Cost()
    q_cost.add_cost(dist_transpose_cost(n, c))
    table[f"{prefix}.form-q.transpose"] = q_cost
    table[f"{prefix}.form-q.mm3d"] = mm3d_cost(c * mloc, n, n, c,
                                               flop_fraction=fl.TRMM_FRACTION)
    table[f"{prefix}.form-r.transpose"] = dist_transpose_cost(n, c)
    return table


def ca_cqr2_line_costs(m: int, n: int, c: int, d: int, base_case_size: int,
                       prefix: str = "cacqr2") -> Dict[str, Cost]:
    """Table VI: per-line costs of CA-CQR2 (two CA-CQR passes + MM3D merge)."""
    table: Dict[str, Cost] = {}
    table.update(ca_cqr_line_costs(m, n, c, d, base_case_size, f"{prefix}.pass1"))
    table.update(ca_cqr_line_costs(m, n, c, d, base_case_size, f"{prefix}.pass2"))
    table[f"{prefix}.merge-r.mm3d"] = mm3d_cost(n, n, n, c,
                                                flop_fraction=fl.TRI_TRI_FRACTION)
    return table


def format_line_table(title: str, expected: Dict[str, Cost],
                      measured: Optional[Dict[str, Cost]] = None) -> str:
    """Render a per-line cost table (optionally measured-vs-expected)."""
    lines = [title, "=" * len(title)]
    header = f"{'phase':<38} {'msgs':>10} {'words':>12} {'flops':>14}"
    if measured is not None:
        header += f" {'match':>6}"
    lines.append(header)
    for key in sorted(expected):
        e = expected[key]
        row = f"{key:<38} {e.messages:>10.0f} {e.words:>12.0f} {e.flops:>14.0f}"
        if measured is not None:
            m = measured.get(key, Cost())
            row += f" {'OK' if m.isclose(e) else 'DIFF':>6}"
        lines.append(row)
    return "\n".join(lines)
