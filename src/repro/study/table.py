"""Tidy result tables: streaming rows, persistence, filtering, rendering.

A :class:`ResultTable` accumulates one :class:`Row` per evaluated grid
point.  Rows arrive in *completion* order (studies stream results as
they finish); :meth:`ResultTable.finalize` orders them by grid index, so
a resumed campaign renders byte-identically to an uninterrupted one.

Persistence is line-oriented JSONL -- one header record describing the
study shape, then one record per completed row, appended and flushed as
each point finishes.  :func:`load_partial` tolerates a truncated tail
(the file a killed campaign leaves behind) by reporting the byte offset
of the last intact record, which the study writer truncates back to
before resuming.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.study.axes import point_key
from repro.utils.validation import require

#: Discriminator of the JSONL header record.
HEADER_KIND = "repro-study"


def jsonable(value: object) -> object:
    """Coerce numpy scalars (and containers of them) to plain JSON types."""
    if isinstance(value, dict):
        return {k: jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    for attr in ("item",):  # numpy scalars expose .item()
        if hasattr(value, attr) and not isinstance(
                value, (str, bytes, int, float, bool, type(None))):
            try:
                return value.item()
            except (TypeError, ValueError):
                break
    return value


@dataclass(frozen=True)
class Row:
    """One completed grid point: where it sits, what it measured.

    ``point`` holds the axis labels (JSON-able), ``values`` the metric
    cells.  ``ok`` is False for structurally infeasible points, which are
    recorded (so resume knows the full grid) but render as dashes.
    """

    index: int
    point: Dict[str, object] = field(hash=False)
    values: Dict[str, object] = field(hash=False)
    ok: bool = True

    @property
    def key(self) -> str:
        """Canonical resume key (grid-position independent)."""
        return point_key(self.point)

    def get(self, name: str, default: Optional[object] = None) -> object:
        """Look a column up in the point labels, then the metric values."""
        if name in self.point:
            return self.point[name]
        return self.values.get(name, default)

    def to_json(self) -> str:
        return json.dumps({"i": self.index, "point": jsonable(self.point),
                           "values": jsonable(self.values), "ok": self.ok},
                          sort_keys=True)

    @classmethod
    def from_obj(cls, obj: dict) -> "Row":
        return cls(index=int(obj["i"]), point=dict(obj["point"]),
                   values=dict(obj["values"]), ok=bool(obj.get("ok", True)))


class ResultTable:
    """An ordered collection of rows with uniform columns and renderers."""

    def __init__(self, point_columns: Sequence[str],
                 value_columns: Sequence[str],
                 rows: Sequence[Row] = (),
                 name: str = "",
                 formats: Optional[Dict[str, str]] = None,
                 params: Optional[Dict[str, object]] = None):
        self.point_columns = list(point_columns)
        self.value_columns = list(value_columns)
        self.name = name
        self.formats = dict(formats or {})
        #: Non-axis parameterization (machine, seed, ...) recorded in the
        #: persistence header so a resume against different parameters is
        #: refused instead of returning stale rows.
        self.params = dict(params or {})
        self._rows: List[Row] = list(rows)

    # -- accumulation -------------------------------------------------------------

    def append(self, row: Row) -> None:
        self._rows.append(row)

    def finalize(self) -> "ResultTable":
        """Order rows by grid index; the canonical rendering order."""
        self._rows.sort(key=lambda r: r.index)
        return self

    # -- access -------------------------------------------------------------------

    @property
    def rows(self) -> List[Row]:
        return list(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    @property
    def columns(self) -> List[str]:
        return self.point_columns + self.value_columns

    def column(self, name: str) -> List[object]:
        """All values of one column, in row order."""
        return [r.get(name) for r in self._rows]

    def filter(self, predicate: Optional[Callable[[Row], bool]] = None,
               **eq: object) -> "ResultTable":
        """Rows matching a predicate and/or column equalities, as a new table."""
        def keep(row: Row) -> bool:
            if predicate is not None and not predicate(row):
                return False
            return all(row.get(k) == v for k, v in eq.items())

        return ResultTable(self.point_columns, self.value_columns,
                           rows=[r for r in self._rows if keep(r)],
                           name=self.name, formats=self.formats)

    def first(self, **eq: object) -> Optional[Row]:
        """The first row matching the column equalities, or None."""
        for row in self._rows:
            if all(row.get(k) == v for k, v in eq.items()):
                return row
        return None

    def pivot(self, index: str, columns: str, values: str
              ) -> Tuple[List[object], List[object], Dict[Tuple[object, object], object]]:
        """Cross-tabulate one value column: ``(row_labels, col_labels, cells)``.

        Labels appear in first-appearance (grid) order; only ``ok`` rows
        contribute cells.
        """
        row_labels: List[object] = []
        col_labels: List[object] = []
        cells: Dict[Tuple[object, object], object] = {}
        for row in self._rows:
            if not row.ok:
                continue
            r, c = row.get(index), row.get(columns)
            if r not in row_labels:
                row_labels.append(r)
            if c not in col_labels:
                col_labels.append(c)
            cells[(r, c)] = row.get(values)
        return row_labels, col_labels, cells

    # -- rendering ----------------------------------------------------------------

    def _cell(self, name: str, value: object) -> str:
        if value is None:
            return "-"
        fmt = self.formats.get(name)
        if fmt is None:
            fmt = "{:.6g}" if isinstance(value, float) else "{!s}"
        try:
            return fmt.format(value)
        except (ValueError, TypeError):
            return str(value)

    def _grid(self) -> List[List[str]]:
        header = list(self.columns)
        body = []
        for row in self._rows:
            cells = [self._cell(c, row.get(c)) for c in self.point_columns]
            if row.ok:
                cells += [self._cell(c, row.values.get(c))
                          for c in self.value_columns]
            else:
                cells += ["-"] * len(self.value_columns)
            body.append(cells)
        return [header] + body

    def to_text(self, title: Optional[str] = None) -> str:
        """Aligned plain-text rendering (one line per row)."""
        grid = self._grid()
        widths = [max(len(line[i]) for line in grid)
                  for i in range(len(grid[0]))]
        lines = []
        head = title if title is not None else self.name
        if head:
            lines += [head, "=" * max(len(head), 1)]
        if not self._rows:
            lines.append("no points")
            return "\n".join(lines)
        for line in grid:
            lines.append("  ".join(cell.rjust(w)
                                   for cell, w in zip(line, widths)).rstrip())
        return "\n".join(lines)

    def to_csv(self) -> str:
        """RFC-4180 CSV with raw (unformatted) cell values."""
        out = io.StringIO()
        writer = csv.writer(out, lineterminator="\n")
        writer.writerow(self.columns)
        for row in self._rows:
            writer.writerow(
                [row.get(c) for c in self.point_columns]
                + [(row.values.get(c) if row.ok else None)
                   for c in self.value_columns])
        return out.getvalue()

    def to_markdown(self) -> str:
        """GitHub-flavored markdown table with formatted cells."""
        grid = self._grid()
        lines = ["| " + " | ".join(grid[0]) + " |",
                 "|" + "|".join(" --- " for _ in grid[0]) + "|"]
        for line in grid[1:]:
            lines.append("| " + " | ".join(line) + " |")
        return "\n".join(lines)

    # -- persistence --------------------------------------------------------------

    def header(self) -> dict:
        """The JSONL header record describing this table's shape."""
        return {"kind": HEADER_KIND, "study": self.name,
                "points": self.point_columns, "values": self.value_columns,
                "params": jsonable(self.params)}

    def save(self, path: str) -> None:
        """Write the whole table (header + rows) to a JSONL file."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(self.header(), sort_keys=True) + "\n")
            for row in self._rows:
                fh.write(row.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "ResultTable":
        """Read a table back (tolerating a truncated tail), in grid order."""
        header, rows, _ = load_partial(path)
        require(header is not None, f"{path} has no study header")
        return cls(point_columns=header.get("points", []),
                   value_columns=header.get("values", []),
                   rows=rows, name=header.get("study", ""),
                   params=header.get("params")).finalize()


def load_partial(path: str) -> Tuple[Optional[dict], List[Row], int]:
    """Read a possibly-truncated study JSONL: ``(header, rows, good_end)``.

    Parsing stops at the first incomplete or unparsable line (what a
    killed campaign leaves at the tail); ``good_end`` is the byte offset
    just past the last intact record, so a resuming writer can truncate
    the garbage before appending.  A missing file yields ``(None, [], 0)``.
    """
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except FileNotFoundError:
        return None, [], 0

    header: Optional[dict] = None
    rows: List[Row] = []
    good_end = 0
    pos = 0
    for line in data.splitlines(keepends=True):
        end = pos + len(line)
        if not line.endswith(b"\n"):
            break                       # truncated tail record
        try:
            obj = json.loads(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            break                       # corrupt record: drop it and the rest
        if header is None:
            if not (isinstance(obj, dict) and obj.get("kind") == HEADER_KIND):
                break                   # not a study file
            header = obj
        else:
            try:
                rows.append(Row.from_obj(obj))
            except (KeyError, TypeError, ValueError):
                break
        good_end = end
        pos = end
    return header, rows, good_end
