"""Generic engine-backed studies and the JSON spec-file loader.

:func:`executed_sweep_study` is the campaign every *executed* sweep in
the repository reduces to: an (algorithm x processor-count) grid over
one reproducible matrix, run through the engine's parallel cached batch
runner, measuring simulated critical-path seconds, accuracy, and the
per-rank communication maxima.

:func:`study_from_dict` builds a study from a plain dict (the schema the
``repro study --spec file.json`` CLI subcommand reads), dispatching on
``kind``:

* ``"executed"`` -- :func:`executed_sweep_study` (numeric or symbolic);
* ``"modeled"``  -- the analytic algorithm-comparison campaign
  (:func:`repro.experiments.sweeps.algorithm_comparison_study`);
* ``"accuracy"`` -- the stability ladder
  (:func:`repro.experiments.accuracy.accuracy_study`);
* ``"symbolic-scaling"`` -- :func:`symbolic_scaling_study`, the cost-only
  strong-scaling ladder that the vectorized virtual machine makes
  tractable at ``P = 2**16`` and beyond;
* ``"planner-crossover"`` -- :func:`planner_crossover_study`, the
  model-driven generalization of the paper's crossover experiment: the
  planner's best-plan surface over an (aspect-ratio x processor-count)
  grid.

``machine`` may be a preset name or an inline machine-description object
(the :meth:`~repro.costmodel.params.MachineSpec.from_dict` schema), so
spec files can target machines beyond the two paper presets.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple, Union

from repro.costmodel.params import MachineSpec
from repro.engine import CapabilityError, MatrixSpec, RunSpec, solvers
from repro.study.axes import Axis
from repro.study.metrics import (
    CriticalPathSeconds,
    Flops,
    Messages,
    Orthogonality,
    RawField,
    Residual,
    Words,
)
from repro.study.study import Study
from repro.utils.validation import require


def default_executed_algorithms() -> Tuple[str, ...]:
    """Registry algorithms with distinct *executed* paths.

    Solvers sharing an executed path (CAQR runs the TSQR-panel ScaLAPACK
    machinery) would produce duplicate rows in an executed sweep, so
    each path appears once.
    """
    names = []
    seen = set()
    for solver in solvers():
        path = type(solver).execute
        if path in seen:
            continue
        seen.add(path)
        names.append(solver.name)
    return tuple(names)


def executed_sweep_study(m: int, n: int, proc_counts: Sequence[int],
                         algorithms: Optional[Sequence[str]] = None,
                         machine: str = "abstract", seed: int = 0,
                         block_size: Optional[int] = None,
                         mode: str = "numeric", kind: str = "gaussian",
                         condition: Optional[float] = None,
                         name: Optional[str] = None) -> Study:
    """An (algorithm x procs) campaign executed through the engine.

    Points whose algorithm is structurally infeasible at a scale (TSQR
    needs ``m/P >= n``, CA needs a feasible grid, ...) are recorded as
    infeasible rows rather than raising -- the campaign covers the full
    grid either way.
    """
    if algorithms is None:
        algorithms = default_executed_algorithms()
    matrix = MatrixSpec(m, n, kind=kind, condition=condition, seed=seed)

    def build_spec(point: Dict[str, object]) -> RunSpec:
        return RunSpec(algorithm=point["algorithm"], matrix=matrix,
                       procs=point["procs"], machine=machine,
                       block_size=block_size, mode=mode)

    return Study(
        name=name or f"executed-sweep-{m}x{n}-{mode}",
        description=f"{m} x {n} {kind} matrix on {machine}, engine-executed",
        axes=(Axis("algorithm", tuple(algorithms)),
              Axis("procs", tuple(proc_counts))),
        metrics=(CriticalPathSeconds(), Orthogonality(), Residual(),
                 Messages(), Words(), Flops()),
        spec=build_spec,
        params={"m": m, "n": n, "machine": str(machine), "seed": seed,
                "block_size": block_size, "mode": mode, "kind": kind,
                "condition": condition})


def symbolic_scaling_study(m: int, n: int, proc_counts: Sequence[int],
                           algorithm: str = "ca_cqr2",
                           machine: str = "abstract", seed: int = 0,
                           name: Optional[str] = None) -> Study:
    """A strong-scaling campaign run *symbolically* at paper-and-beyond scale.

    Every point executes the real distributed schedule through the engine
    with shape-only blocks, so the campaign measures the exact simulated
    critical path and per-rank communication maxima without allocating
    matrix data.  The vectorized array-backed machine is what makes the
    large end of the ladder tractable: processor counts of ``2**16`` (the
    paper's largest runs were 131072 cores) complete in seconds per
    point, and ``2**20``-rank scenarios extrapolate beyond the hardware
    the paper measured.
    """
    matrix = MatrixSpec(m, n, seed=seed)

    def build_spec(point: Dict[str, object]) -> RunSpec:
        return RunSpec(algorithm=algorithm, matrix=matrix,
                       procs=point["procs"], machine=machine,
                       mode="symbolic")

    return Study(
        name=name or f"symbolic-scaling-{algorithm}-{m}x{n}",
        description=(f"{m} x {n} strong scaling of {algorithm} on {machine}, "
                     "cost-only (symbolic) execution"),
        axes=(Axis("procs", tuple(proc_counts)),),
        metrics=(CriticalPathSeconds(), Messages(), Words(), Flops()),
        spec=build_spec,
        params={"m": m, "n": n, "algorithm": algorithm,
                "machine": str(machine), "seed": seed, "mode": "symbolic"})


def planner_crossover_study(n: int, aspects: Sequence[int],
                            proc_counts: Sequence[int],
                            machine: Union[str, MachineSpec] = "stampede2",
                            objective: str = "time",
                            name: Optional[str] = None) -> Study:
    """The planner's best-plan surface over an (aspect, procs) grid.

    The model-driven generalization of the paper's crossover experiment:
    instead of comparing two hand-picked families at one matrix shape,
    every point asks the planner (:mod:`repro.plan`) for the best
    configuration across *all* registered algorithms for an
    ``(n * aspect) x n`` matrix at that processor count, and reports the
    winner plus its margin over the best 2D-baseline plan -- mapping
    where communication avoidance pays off as the shape and scale vary.

    The whole grid is planned as one batched lattice search
    (:meth:`~repro.plan.Planner.plan_many`) on the first evaluated
    point: candidate enumeration is shared across processor counts and
    the stacked screen prices every (candidate, point) pair in a single
    vectorized pass, bit-identical to planning each point separately.
    Structurally infeasible points stay ``None`` rows without poisoning
    their neighbors.
    """
    from repro.plan import Planner, ProblemSpec
    from repro.utils.validation import check_positive_int

    check_positive_int(n, "n")
    machine_name = machine if isinstance(machine, str) else machine.name
    planner = Planner(refine=None)
    grid = [(aspect, procs)
            for aspect in tuple(aspects) for procs in tuple(proc_counts)]
    outcomes: Dict[Tuple[int, int], object] = {}

    def evaluate(point: Dict[str, object]) -> Optional[dict]:
        if not outcomes:
            # Evaluate-based studies run serially in-process, so one
            # lazy batched search serves every grid point.
            results = planner.plan_many(
                [ProblemSpec(m=n * aspect, n=n, procs=procs,
                             machine=machine, objective=objective)
                 for aspect, procs in grid],
                errors="return")
            outcomes.update(zip(grid, results))
        result = outcomes[(point["aspect"], point["procs"])]
        if isinstance(result, CapabilityError):
            return None
        if isinstance(result, Exception):
            raise result
        best = result.best()
        baseline = [p for p in result.plans
                    if p.algorithm in ("scalapack", "caqr")]
        speedup = (baseline[0].seconds / best.seconds) if baseline else None
        return {"algorithm": best.algorithm, "config": best.config,
                "modeled_seconds": best.seconds,
                "speedup_vs_2d": speedup,
                "num_candidates": result.num_candidates}

    return Study(
        name=name or f"planner-crossover-n{n}-{machine_name}",
        description=(f"planner best-plan surface, (n*aspect) x {n} on "
                     f"{machine_name}, objective={objective}"),
        axes=(Axis("aspect", tuple(aspects)),
              Axis("procs", tuple(proc_counts))),
        metrics=(RawField("algorithm", "{}"),
                 RawField("config", "{}"),
                 RawField("modeled_seconds", "{:.4f}"),
                 RawField("speedup_vs_2d", "{:.2f}"),
                 RawField("num_candidates", "{:d}")),
        evaluate=evaluate,
        params={"n": n, "machine": machine_name, "objective": objective})


def study_from_dict(cfg: dict) -> Study:
    """Build a study from the ``repro study --spec`` JSON schema.

    Required keys: ``m``, ``n``, plus ``procs`` (executed/modeled) or
    ``conditions`` (accuracy).  Optional: ``kind`` (default
    ``"executed"``), ``name``, ``algorithms``, ``machine``,
    ``block_size``, ``seed``, ``mode`` (numeric/symbolic) and, for
    accuracy, ``sv_mode``.
    """
    require(isinstance(cfg, dict), "study spec must be a JSON object")
    kind = cfg.get("kind", "executed")
    unknown = ValueError(
        f"unknown study kind {kind!r}; expected executed, modeled, "
        "accuracy, symbolic-scaling, or planner-crossover")

    def need(key: str):
        require(key in cfg, f"study spec (kind={kind}) needs {key!r}")
        return cfg[key]

    def resolve_machine(name) -> MachineSpec:
        from repro.costmodel.params import machine_by_name

        if isinstance(name, dict):
            return MachineSpec.from_dict(name)
        try:
            return machine_by_name(name)
        except KeyError as exc:
            # The CLI's error contract is ValueError -> `error: ...`.
            raise ValueError(str(exc).strip('"')) from None

    if kind == "executed":
        machine = cfg.get("machine", "abstract")
        resolved = resolve_machine(machine)  # fail fast on an unknown preset
        return executed_sweep_study(
            m=need("m"), n=need("n"), proc_counts=tuple(need("procs")),
            algorithms=cfg.get("algorithms"),
            machine=machine if isinstance(machine, str) else resolved,
            seed=cfg.get("seed", 0), block_size=cfg.get("block_size"),
            mode=cfg.get("mode", "numeric"), name=cfg.get("name"))
    if kind == "modeled":
        from repro.experiments.sweeps import algorithm_comparison_study

        return algorithm_comparison_study(
            m=need("m"), n=need("n"),
            machine=resolve_machine(cfg.get("machine", "stampede2")),
            proc_counts=tuple(need("procs")),
            block_size=cfg.get("block_size") or 32,
            algorithms=cfg.get("algorithms"), name=cfg.get("name"))
    if kind == "accuracy":
        from repro.experiments.accuracy import accuracy_study

        return accuracy_study(
            m=need("m"), n=need("n"), conditions=tuple(need("conditions")),
            seed=cfg.get("seed", 1234), mode=cfg.get("sv_mode", "geometric"),
            name=cfg.get("name"))
    if kind == "symbolic-scaling":
        machine = cfg.get("machine", "abstract")
        resolved = resolve_machine(machine)
        return symbolic_scaling_study(
            m=need("m"), n=need("n"), proc_counts=tuple(need("procs")),
            algorithm=cfg.get("algorithm", "ca_cqr2"),
            machine=machine if isinstance(machine, str) else resolved,
            seed=cfg.get("seed", 0), name=cfg.get("name"))
    if kind == "planner-crossover":
        return planner_crossover_study(
            n=need("n"), aspects=tuple(need("aspects")),
            proc_counts=tuple(need("procs")),
            machine=resolve_machine(cfg.get("machine", "stampede2")),
            objective=cfg.get("objective", "time"), name=cfg.get("name"))
    raise unknown
