"""Declarative axes: the grid a :class:`~repro.study.Study` expands over.

An :class:`Axis` names one dimension of a campaign (algorithm, processor
count, condition number, scaling variant, ...) and its values.  The grid
is the row-major cartesian product of the axes, so every point has a
stable integer index -- the key to deterministic table ordering and to
resuming a partially-completed campaign.

Axis values may be arbitrary Python objects (e.g. the paper's variant
tuples); each value also carries a JSON-able *label* used for
persistence, table rendering, and resume keys.  Labels default to the
value itself for plain scalars and to ``str(value)`` otherwise.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Sequence, Tuple

from repro.utils.validation import require

#: JSON-able scalar types an axis value can be persisted as verbatim.
_SCALARS = (str, int, float, bool, type(None))


def _default_label(value: object) -> object:
    """The persisted/displayed form of an axis value."""
    if isinstance(value, _SCALARS):
        return value
    return str(value)


@dataclass(frozen=True)
class Axis:
    """One named dimension of a study grid.

    ``labels`` overrides the persisted/displayed form of each value
    (useful when values are rich objects such as scaling-variant tuples);
    it must be JSON-able and parallel to ``values``.
    """

    name: str
    values: Tuple[object, ...]
    labels: Optional[Tuple[object, ...]] = None

    def __post_init__(self) -> None:
        require(bool(self.name), "an axis needs a non-empty name")
        object.__setattr__(self, "values", tuple(self.values))
        require(len(self.values) > 0, f"axis {self.name!r} has no values")
        if self.labels is not None:
            object.__setattr__(self, "labels", tuple(self.labels))
            require(len(self.labels) == len(self.values),
                    f"axis {self.name!r}: {len(self.labels)} labels for "
                    f"{len(self.values)} values")

    def __len__(self) -> int:
        return len(self.values)

    def label(self, i: int) -> object:
        """The JSON-able label of the ``i``-th value."""
        if self.labels is not None:
            return self.labels[i]
        return _default_label(self.values[i])


@dataclass(frozen=True)
class Point:
    """One grid point: its stable index, raw values, and JSON-able labels."""

    index: int
    values: Dict[str, object] = field(hash=False)
    labels: Dict[str, object] = field(hash=False)

    @property
    def key(self) -> str:
        """Canonical resume key (independent of grid position)."""
        return point_key(self.labels)


def point_key(labels: Dict[str, object]) -> str:
    """Canonical JSON encoding of a point's labels, for resume matching."""
    return json.dumps(labels, sort_keys=True, separators=(",", ":"))


def expand(axes: Sequence[Axis]) -> Iterator[Point]:
    """Row-major cartesian product of the axes, with stable indices."""
    names = [a.name for a in axes]
    require(len(set(names)) == len(names), f"duplicate axis names in {names}")
    index_ranges = [range(len(a)) for a in axes]
    for index, combo in enumerate(itertools.product(*index_ranges)):
        values = {a.name: a.values[i] for a, i in zip(axes, combo)}
        labels = {a.name: a.label(i) for a, i in zip(axes, combo)}
        yield Point(index=index, values=values, labels=labels)


def grid_size(axes: Sequence[Axis]) -> int:
    """Total number of points in the grid."""
    size = 1
    for a in axes:
        size *= len(a)
    return size
