"""Pluggable metrics: the measured columns of a study's result table.

A :class:`Metric` turns one completed point's :class:`Outcome` into one
JSON-able cell value.  Engine-backed studies expose the executed
:class:`~repro.engine.QRRun` (``outcome.run``); custom-evaluator studies
(the analytic cost-model campaigns) expose whatever the evaluator
returned (``outcome.raw``, conventionally a dict read by
:class:`RawField`).

Built-ins cover the paper's reporting axes: modeled/critical-path
seconds, Gigaflops/s/node, orthogonality error, relative residual, and
per-rank message/word/flop maxima.
"""

from __future__ import annotations

import abc
import functools
from typing import Dict, Optional

from repro.engine.result import QRRun
from repro.engine.spec import MatrixSpec, RunSpec


@functools.lru_cache(maxsize=4)
def _materialized(matrix: MatrixSpec):
    """Memoized matrix generation: every row of a sweep shares its input."""
    return matrix.materialize()


class Outcome:
    """What one evaluated grid point produced, in whichever execution mode.

    ``point`` is the raw axis-value dict; exactly one of ``run`` (an
    engine-executed :class:`QRRun`, with its ``spec``) or ``raw`` (a
    custom evaluator's result) is populated.
    """

    __slots__ = ("point", "spec", "run", "raw")

    def __init__(self, point: Dict[str, object],
                 spec: Optional[RunSpec] = None,
                 run: Optional[QRRun] = None,
                 raw: object = None):
        self.point = point
        self.spec = spec
        self.run = run
        self.raw = raw


class Metric(abc.ABC):
    """One measured column: a name, a cell format, and a compute rule."""

    #: Column name in the result table (must be unique within a study).
    name: str = ""
    #: Format string applied to non-None cells by the text renderers.
    fmt: str = "{:.6g}"

    @abc.abstractmethod
    def compute(self, outcome: Outcome) -> Optional[object]:
        """The cell value for one completed point (JSON-able, or None)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


class RawField(Metric):
    """Read one key from a custom evaluator's raw dict result."""

    def __init__(self, name: str, fmt: str = "{:.6g}"):
        self.name = name
        self.fmt = fmt

    def compute(self, outcome: Outcome) -> Optional[object]:
        if not isinstance(outcome.raw, dict):
            return None
        return outcome.raw.get(self.name)


class CriticalPathSeconds(Metric):
    """Simulated BSP critical-path seconds of an executed run."""

    name = "seconds"
    fmt = "{:.4g}"

    def compute(self, outcome: Outcome) -> Optional[float]:
        if outcome.run is None:
            return None
        return float(outcome.run.report.critical_path_time)


class Orthogonality(Metric):
    """``||Q^T Q - I||_2`` of an executed numeric run (None if symbolic)."""

    name = "orthogonality"
    fmt = "{:.1e}"

    def compute(self, outcome: Outcome) -> Optional[float]:
        if outcome.run is None or not outcome.run.is_numeric:
            return None
        return float(outcome.run.orthogonality_error())


class Residual(Metric):
    """Relative residual ``||A - QR||_F / ||A||_F`` of a numeric run.

    Rematerializes the input from the run's spec, so it only applies to
    engine-backed studies whose specs carry a :class:`MatrixSpec`.
    """

    name = "residual"
    fmt = "{:.1e}"

    def compute(self, outcome: Outcome) -> Optional[float]:
        if (outcome.run is None or not outcome.run.is_numeric
                or outcome.spec is None):
            return None
        if outcome.spec.matrix is not None:
            a = _materialized(outcome.spec.matrix)
        else:
            a = outcome.spec.materialize()
        return float(outcome.run.residual_error(a))


class _MaxCostField(Metric):
    """Per-rank critical-path maximum of one cost component."""

    _field = ""
    fmt = "{:.6g}"

    def compute(self, outcome: Outcome) -> Optional[float]:
        if outcome.run is None:
            return None
        return float(getattr(outcome.run.report.max_cost, self._field))


class Messages(_MaxCostField):
    """Per-rank maximum message count of an executed run."""

    name = "messages"
    _field = "messages"


class Words(_MaxCostField):
    """Per-rank maximum words communicated in an executed run."""

    name = "words"
    _field = "words"


class Flops(_MaxCostField):
    """Per-rank maximum flop count of an executed run."""

    name = "flops"
    _field = "flops"
