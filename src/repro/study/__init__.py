"""repro.study: one declarative campaign abstraction over every experiment.

The paper's evidence is a set of *campaigns* -- scaling curves, accuracy
ladders, crossover sweeps.  A :class:`Study` declares one campaign as a
grid of :class:`Axis` (algorithm, matrix shape/kind/condition, processor
ladder, machine preset, mode, variant tuple, ...) plus pluggable
:class:`Metric` columns; execution and aggregation are then uniform for
every campaign in the repository::

    from repro.study import executed_sweep_study

    study = executed_sweep_study(m=2048, n=32, proc_counts=(4, 8, 16))
    table = study.run(cache_dir=".repro-cache",
                      jsonl_path="sweep.jsonl")     # resumable campaign
    print(table.to_text())                          # or to_csv / to_markdown
    fast = table.filter(algorithm="ca_cqr2")

Engine-backed studies expand their grid to :class:`repro.engine.RunSpec`
runs and stream them through :func:`repro.engine.run_iter` (process
parallelism + the fingerprint-keyed on-disk result cache); completed
rows stream into a :class:`ResultTable` and -- when ``jsonl_path`` is
given -- onto disk as each point finishes, so an interrupted campaign
resumes executing only the missing points and finalizes to an identical
table.

The experiment modules define their campaigns on top of this API:
:func:`repro.experiments.sweeps.algorithm_comparison_study`,
:func:`repro.experiments.scaling.strong_scaling_study` /
``weak_scaling_study``,
:func:`repro.experiments.accuracy.accuracy_study`, and
:func:`repro.experiments.crossover.crossover_study`.  The ``repro
study`` CLI subcommand runs a study from flags or a JSON spec file.
"""

from repro.study.axes import Axis, Point, expand, grid_size, point_key
from repro.study.builtin import (
    default_executed_algorithms,
    executed_sweep_study,
    planner_crossover_study,
    study_from_dict,
    symbolic_scaling_study,
)
from repro.study.metrics import (
    CriticalPathSeconds,
    Flops,
    Messages,
    Metric,
    Orthogonality,
    Outcome,
    RawField,
    Residual,
    Words,
)
from repro.study.study import ProgressInfo, Study
from repro.study.table import ResultTable, Row, load_partial

__all__ = [
    "Axis",
    "CriticalPathSeconds",
    "Flops",
    "Messages",
    "Metric",
    "Orthogonality",
    "Outcome",
    "Point",
    "ProgressInfo",
    "RawField",
    "Residual",
    "ResultTable",
    "Row",
    "Study",
    "Words",
    "default_executed_algorithms",
    "executed_sweep_study",
    "expand",
    "grid_size",
    "load_partial",
    "planner_crossover_study",
    "point_key",
    "study_from_dict",
    "symbolic_scaling_study",
]
