"""The campaign core: declare a grid once, execute it uniformly.

A :class:`Study` is a declarative description of one experimental
campaign: a grid of :class:`~repro.study.axes.Axis` (algorithm, matrix
shape/kind/condition, processor ladder, machine preset, mode, scaling
variant, ...) plus the :class:`~repro.study.metrics.Metric` columns to
measure at every point.  Execution is uniform across every campaign in
the repository:

* **engine-backed** studies (``spec=``) expand each point to a
  :class:`~repro.engine.RunSpec` and execute through the engine's
  parallel, cached, *streaming* batch runner
  (:func:`repro.engine.run_iter`);
* **model-backed** studies (``evaluate=``) call a custom evaluator per
  point -- the analytic cost-model campaigns (sweeps, scaling figures,
  crossover) and the sequential accuracy ladder.

Either way, completed rows **stream** into a tidy
:class:`~repro.study.table.ResultTable` in completion order, with
optional JSONL persistence: pass ``jsonl_path`` and every finished point
is appended and flushed immediately, so a killed campaign resumes from
its partial file executing only the missing points -- and the finalized
table is identical to an uninterrupted run's.
"""

from __future__ import annotations

import inspect
import json
import os
import threading
import time
from dataclasses import dataclass
from typing import (Callable, Dict, Iterator, List, Optional, Sequence,
                    Tuple)

from repro.engine import CapabilityError, solver_for
from repro.engine.spec import RunSpec
from repro.obs import span
from repro.utils.config import UNSET
from repro.study.axes import Axis, Point, expand, grid_size
from repro.study.metrics import Metric, Outcome
from repro.study.table import ResultTable, Row, load_partial
from repro.utils.validation import require

#: Signature of the legacy progress callback: ``(done, total, row)``.
#: Callbacks taking a single argument receive a :class:`ProgressInfo`.
ProgressFn = Callable[[int, int, Row], None]


@dataclass(frozen=True)
class ProgressInfo:
    """One progress tick, delivered to single-argument callbacks.

    ``rate`` and ``eta_seconds`` are derived from *executed* rows only --
    resumed rows replay from the JSONL file in microseconds and would
    make any throughput estimate meaningless.  Both are ``None`` until
    the first executed row lands.  Progress is observational: none of
    these fields are ever written into the result JSONL.
    """

    done: int
    total: int
    row: Row
    #: ``True`` when the row was executed now; ``False`` when replayed
    #: from a partial JSONL file.
    fresh: bool
    #: Seconds since the stream started.
    elapsed: float
    #: Executed rows per second, or ``None`` before the first one.
    rate: Optional[float]
    #: Estimated seconds until the stream completes, or ``None``.
    eta_seconds: Optional[float]


def _wants_info(progress: Callable) -> bool:
    """Whether *progress* takes one positional argument (new-style).

    Legacy ``(done, total, row)`` callbacks keep working unchanged;
    anything whose signature cannot be introspected is treated as
    legacy.
    """
    try:
        params = list(inspect.signature(progress).parameters.values())
    except (TypeError, ValueError):
        return False
    positional = [p for p in params
                  if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)]
    if any(p.kind == p.VAR_POSITIONAL for p in params):
        return False
    required = [p for p in positional if p.default is p.empty]
    return len(required) <= 1 and len(positional) >= 1 and len(positional) < 3


@dataclass
class Study:
    """One declarative campaign: axes x metrics, plus how to evaluate a point.

    Exactly one of ``spec`` (point -> :class:`RunSpec`, engine-executed)
    or ``evaluate`` (point -> raw result object, e.g. an analytic-model
    dict) must be provided.  Both may return ``None`` to mark a point
    structurally infeasible -- such points are recorded as not-``ok``
    rows rather than raising, mirroring how a practitioner's options
    narrow across a sweep.
    """

    name: str
    axes: Tuple[Axis, ...]
    metrics: Tuple[Metric, ...]
    spec: Optional[Callable[[Dict[str, object]], Optional[RunSpec]]] = None
    evaluate: Optional[Callable[[Dict[str, object]], object]] = None
    description: str = ""
    #: Non-axis parameterization (machine, seed, block size, ...), recorded
    #: in the JSONL header: resuming the same grid under different
    #: parameters is refused instead of silently returning stale rows.
    params: Optional[Dict[str, object]] = None

    def __post_init__(self) -> None:
        self.axes = tuple(self.axes)
        self.metrics = tuple(self.metrics)
        require(bool(self.axes), "a study needs at least one axis")
        require((self.spec is None) != (self.evaluate is None),
                "a study needs exactly one of spec= (engine-executed) or "
                "evaluate= (custom evaluator)")
        names = [*(a.name for a in self.axes),
                 *(m.name for m in self.metrics)]
        require(len(set(names)) == len(names),
                f"duplicate column names across axes/metrics: {names}")

    # -- shape --------------------------------------------------------------------

    def points(self) -> List[Point]:
        """The expanded grid, in row-major order."""
        return list(expand(self.axes))

    def __len__(self) -> int:
        return grid_size(self.axes)

    def table(self, rows: Sequence[Row] = ()) -> ResultTable:
        """An empty (or pre-seeded) result table with this study's shape."""
        return ResultTable(
            point_columns=[a.name for a in self.axes],
            value_columns=[m.name for m in self.metrics],
            rows=rows, name=self.name,
            formats={m.name: m.fmt for m in self.metrics},
            params=self.params)

    # -- execution ----------------------------------------------------------------

    def run(self, *, parallel: Optional[bool] = None,
            max_workers: Optional[int] = None,
            cache_dir=UNSET, jsonl_path: Optional[str] = None,
            resume: bool = True, progress: Optional[ProgressFn] = None,
            session=None) -> ResultTable:
        """Execute the campaign and return the finalized (grid-ordered) table."""
        table = self.table()
        for row in self.stream(parallel=parallel, max_workers=max_workers,
                               cache_dir=cache_dir, jsonl_path=jsonl_path,
                               resume=resume, progress=progress,
                               session=session):
            table.append(row)
        return table.finalize()

    def stream(self, *, parallel: Optional[bool] = None,
               max_workers: Optional[int] = None,
               cache_dir=UNSET,
               jsonl_path: Optional[str] = None,
               resume: bool = True, progress: Optional[ProgressFn] = None,
               session=None) -> Iterator[Row]:
        """Yield one :class:`Row` per grid point, as each completes.

        Previously-persisted points (when resuming from ``jsonl_path``)
        are yielded first from the file without re-executing; the rest
        execute through the engine's streaming batch runner (engine
        studies) or the custom evaluator, and are appended to the file
        as they finish.  ``session`` supplies the execution context
        (auto-spec resolution, worker propagation, executor and
        result-cache defaults when ``parallel``/``cache_dir`` are left
        unspecified) for engine-backed points; the default session is
        used when omitted (:meth:`repro.session.Session.study` passes
        itself).
        """
        points = self.points()
        total = len(points)
        done = 0
        fresh_done = 0
        started = time.perf_counter()
        wants_info = progress is not None and _wants_info(progress)
        existing = self._load_existing(jsonl_path, resume)
        writer = _JsonlWriter(jsonl_path, self.table().header(),
                              resume=resume) if jsonl_path else None

        def emit(row: Row, fresh: bool) -> Row:
            nonlocal done, fresh_done
            if fresh and writer is not None:
                writer.append(row)
            done += 1
            if fresh:
                fresh_done += 1
            if progress is not None:
                if wants_info:
                    elapsed = time.perf_counter() - started
                    rate = (fresh_done / elapsed
                            if fresh_done and elapsed > 0 else None)
                    eta = ((total - done) / rate
                           if rate and done < total else None)
                    progress(ProgressInfo(done=done, total=total, row=row,
                                          fresh=fresh, elapsed=elapsed,
                                          rate=rate, eta_seconds=eta))
                else:
                    progress(done, total, row)
            return row

        # The root span is held open across yields; _Span.__exit__ is
        # defensive about the context it closes in, so an abandoned
        # generator cannot raise out of observation.
        with span("study", study=self.name, points=total) as root:
            try:
                pending: List[Point] = []
                for pt in points:
                    hit = existing.get(pt.key)
                    if hit is not None:
                        # Re-anchor the stored row to the current grid index.
                        with span("study.point", study=self.name,
                                  index=pt.index, source="resume",
                                  worker=threading.current_thread().name):
                            row = Row(index=pt.index, point=pt.labels,
                                      values=hit.values, ok=hit.ok)
                        yield emit(row, fresh=False)
                    else:
                        pending.append(pt)

                if self.spec is not None:
                    yield from (emit(row, fresh=True)
                                for row in self._stream_engine(
                                    pending, parallel=parallel,
                                    max_workers=max_workers,
                                    cache_dir=cache_dir,
                                    session=session))
                else:
                    for pt in pending:
                        with span("study.point", study=self.name,
                                  index=pt.index, source="evaluate",
                                  worker=threading.current_thread().name
                                  ) as sp:
                            row = self._evaluate_point(pt)
                            sp.set(ok=row.ok)
                        yield emit(row, fresh=True)
                root.set(done=done, resumed=done - fresh_done,
                         executed=fresh_done)
            finally:
                if writer is not None:
                    writer.close()

    # -- internals ----------------------------------------------------------------

    def _load_existing(self, jsonl_path: Optional[str],
                       resume: bool) -> Dict[str, Row]:
        if not jsonl_path or not resume:
            return {}
        header, rows, good_end = load_partial(jsonl_path)
        if header is None:
            # A pre-existing file that is not a study JSONL must be
            # refused, not clobbered (the writer truncates garbage).
            require(good_end > 0 or not os.path.exists(jsonl_path)
                    or os.path.getsize(jsonl_path) == 0,
                    f"{jsonl_path} exists but is not a study results file; "
                    "refusing to overwrite it (pass resume=False / --fresh "
                    "to replace it, or use a fresh path)")
            return {}
        mine = self.table().header()
        require(header == mine,
                f"{jsonl_path} belongs to a different study or "
                f"parameterization (found {header.get('study')!r} with axes "
                f"{header.get('points')} and params {header.get('params')}, "
                f"expected {mine['study']!r} with axes {mine['points']} and "
                f"params {mine['params']}); pass resume=False or a fresh path")
        return {row.key: row for row in rows}

    def _row(self, pt: Point, outcome: Optional[Outcome]) -> Row:
        if outcome is None:
            return Row(index=pt.index, point=pt.labels, values={}, ok=False)
        values = {m.name: m.compute(outcome) for m in self.metrics}
        return Row(index=pt.index, point=pt.labels, values=values, ok=True)

    def _evaluate_point(self, pt: Point) -> Row:
        raw = self.evaluate(dict(pt.values))
        if raw is None:
            return self._row(pt, None)
        return self._row(pt, Outcome(point=pt.values, raw=raw))

    def _stream_engine(self, pending: Sequence[Point], *,
                       parallel: Optional[bool],
                       max_workers: Optional[int],
                       cache_dir, session=None) -> Iterator[Row]:
        """Expand points to RunSpecs and stream them through the engine.

        Auto specs resolve through the session's planner context (plan
        cache + objective), so a planner-aware campaign sees the same
        configurations a direct ``session.run`` would.
        """
        if session is None:
            from repro.session import default_session

            session = default_session()
        runnable: List[Point] = []
        specs: List[RunSpec] = []
        for pt in pending:
            spec = self.spec(dict(pt.values))
            if spec is not None:
                try:
                    spec = session.resolve(spec)
                    solver_for(spec.algorithm).prepare(spec)
                except CapabilityError:
                    spec = None
            if spec is None:
                yield self._row(pt, None)
            else:
                runnable.append(pt)
                specs.append(spec)
        for i, run in session.run_iter(specs, parallel=parallel,
                                       max_workers=max_workers,
                                       cache_dir=cache_dir):
            pt = runnable[i]
            # Engine points execute in pool workers; the span covers row
            # materialization and attributes the driving thread.
            with span("study.point", study=self.name, index=pt.index,
                      source="engine",
                      worker=threading.current_thread().name) as sp:
                outcome = Outcome(point=pt.values, spec=specs[i], run=run)
                row = self._row(pt, outcome)
                sp.set(ok=row.ok)
            yield row


class _JsonlWriter:
    """Append-mode study persistence, safe against a truncated tail.

    On open, the file is truncated back to its last intact record (a
    killed campaign can leave a half-written line; appending after it
    would corrupt the next record too), and the header is written if the
    file is new or empty.
    """

    def __init__(self, path: str, header: dict, resume: bool = True):
        good_end = load_partial(path)[2] if resume else 0
        if os.path.exists(path) and good_end < os.path.getsize(path):
            with open(path, "r+b") as fh:
                fh.truncate(good_end)
        self._fh = open(path, "a", encoding="utf-8")
        if good_end == 0:
            self._fh.write(json.dumps(header, sort_keys=True) + "\n")
            self._fh.flush()

    def append(self, row: Row) -> None:
        self._fh.write(row.to_json() + "\n")
        self._fh.flush()

    def close(self) -> None:
        self._fh.close()
