"""Timeline rendering for traced virtual-machine runs.

Enable tracing with ``VirtualMachine(P, trace=True)`` (which attaches a
:class:`~repro.vmpi.machine.TraceRecorder` sink -- tracing is a pluggable
:class:`~repro.vmpi.machine.TraceSink` and zero-cost when no sink is
attached); every charge then records a
:class:`~repro.vmpi.machine.TraceEvent` with its rank, phase, kind
(compute / collective / p2p) and clock interval.  The engine exposes the
same plumbing as :func:`repro.engine.run_traced`, and the ``repro trace``
CLI subcommand renders both artifacts for any RunSpec.  This module turns
the events into

* a **text Gantt chart** (:func:`render_gantt`) -- one row per rank,
  compute as ``#``, collectives as ``=``, point-to-point as ``-``, idle
  (waiting at a synchronization point) as ``.``;
* a **phase time profile** (:func:`phase_profile`) -- critical-path seconds
  per top-level phase, the empirical analogue of the per-line cost tables.

Intended for small runs (tens of ranks): the point is to *see* the BSP
structure -- e.g. CFR3D's synchronization ladder or the idle triangles the
paper's synchronization-cost terms describe.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.utils.validation import require
from repro.vmpi.machine import TraceEvent, TraceRecorder, VirtualMachine

_KIND_GLYPHS = {"compute": "#", "collective": "=", "p2p": "-"}


def _require_recorded(vm: VirtualMachine, what: str) -> None:
    """The renderers need recorded events, not just any attached sink."""
    require(vm.trace_enabled, f"run the VirtualMachine with trace=True to {what}")
    require(isinstance(vm.trace_sink, TraceRecorder),
            f"the attached {type(vm.trace_sink).__name__} sink does not record "
            f"events in memory; attach a TraceRecorder (trace=True) to {what}")


def render_gantt(vm: VirtualMachine, width: int = 80,
                 ranks: Optional[Sequence[int]] = None) -> str:
    """Text Gantt chart of a traced run, one row per rank."""
    _require_recorded(vm, "render a Gantt")
    require(width > 0, f"Gantt width must be positive, got {width}")
    ranks = list(range(vm.num_ranks)) if ranks is None else list(ranks)
    if not vm.events:
        return "(empty trace)"
    horizon = max((e.end for e in vm.events
                   if math.isfinite(e.end)), default=0.0)
    if horizon <= 0 or not math.isfinite(horizon):
        # Events exist but span no renderable time (all zero-duration at
        # t=0, or corrupt/non-finite clocks): say so rather than divide
        # by the horizon.
        return (f"(degenerate trace: {len(vm.events)} events, "
                f"horizon {horizon:.4g}s)")
    scale = width / horizon
    lines = [f"timeline 0 .. {horizon:.4g}s  "
             f"(# compute, = collective, - p2p, . idle)"]
    by_rank: Dict[int, List[TraceEvent]] = {r: [] for r in ranks}
    for e in vm.events:
        if e.rank in by_rank:
            by_rank[e.rank].append(e)
    for r in ranks:
        row = ["."] * width
        for e in sorted(by_rank[r], key=lambda ev: ev.start):
            if not (math.isfinite(e.start) and math.isfinite(e.end)):
                continue
            # Clamp into [0, width): an event starting at (or past) the
            # horizon still paints the last column instead of indexing
            # off the row or wrapping negative.
            lo = max(0, min(width - 1, int(e.start * scale)))
            hi = min(width, max(lo + 1, int(e.end * scale)))
            glyph = _KIND_GLYPHS.get(e.kind, "?")
            for i in range(lo, hi):
                row[i] = glyph
        lines.append(f"rank {r:>4} |{''.join(row)}|")
    return "\n".join(lines)


def phase_profile(vm: VirtualMachine, depth: int = 1) -> Dict[str, float]:
    """Critical-path seconds per phase prefix (truncated to *depth* segments).

    The "critical path" attribution is the maximum, over ranks, of the
    total traced duration each rank spent in the phase -- consistent with
    the per-processor view of the paper's cost tables.
    """
    _require_recorded(vm, "profile")
    per_rank: Dict[str, Dict[int, float]] = {}
    for e in vm.events:
        key = ".".join(e.phase.split(".")[:depth])
        per_rank.setdefault(key, {}).setdefault(e.rank, 0.0)
        per_rank[key][e.rank] += e.duration
    return {key: max(times.values()) for key, times in per_rank.items()}


def idle_fraction(vm: VirtualMachine, rank: int) -> float:
    """Fraction of the run's horizon that *rank* spent idle (not traced busy).

    Idle time in this model is exactly the waiting the synchronization
    terms of the alpha-beta-gamma analysis describe: a rank arriving early
    at a collective stalls until the group's slowest member shows up.
    """
    _require_recorded(vm, "measure idle time")
    horizon = max((e.end for e in vm.events), default=0.0)
    if horizon <= 0:
        return 0.0
    busy = sum(e.duration for e in vm.events if e.rank == rank)
    return max(0.0, 1.0 - busy / horizon)


def format_phase_profile(vm: VirtualMachine, depth: int = 2) -> str:
    """Render :func:`phase_profile` as an aligned table, longest first."""
    profile = phase_profile(vm, depth=depth)
    total = max((e.end for e in vm.events), default=0.0)
    lines = [f"{'phase':<40} {'seconds':>12} {'share':>7}"]
    for key, secs in sorted(profile.items(), key=lambda kv: -kv[1]):
        share = secs / total if total > 0 else 0.0
        lines.append(f"{key:<40} {secs:>12.5g} {share:>6.0%}")
    return "\n".join(lines)
