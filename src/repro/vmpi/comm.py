"""Communicators: collectives over ordered groups of virtual ranks.

A :class:`Communicator` is an ordered tuple of machine ranks (the order is
the group's coordinate order along the grid dimension it was sliced from,
matching MPI communicator semantics).  Collectives move :class:`Block`
payloads between ranks *and* charge the paper's butterfly cost formulas to
every participant through the machine.

Numeric payloads are copied on delivery so no two ranks ever alias a
buffer; symbolic payloads are re-wrapped by shape.  Reductions on symbolic
blocks validate shapes and return a shape -- arithmetically free, exactly
like the cost model's ``beta >> gamma`` assumption.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.costmodel import collectives as cc
from repro.utils.validation import require
from repro.vmpi.datatypes import Block, NumericBlock, SymbolicBlock
from repro.vmpi.machine import VirtualMachine


class Communicator:
    """An ordered group of virtual ranks supporting MPI-style collectives."""

    __slots__ = ("vm", "ranks")

    def __init__(self, vm: VirtualMachine, ranks: Sequence[int]):
        require(len(ranks) > 0, "a communicator needs at least one rank")
        require(len(set(ranks)) == len(ranks),
                f"communicator ranks must be distinct, got {list(ranks)}")
        for r in ranks:
            require(0 <= r < vm.num_ranks, f"rank {r} out of range [0, {vm.num_ranks})")
        self.vm = vm
        self.ranks: Tuple[int, ...] = tuple(ranks)

    @property
    def size(self) -> int:
        return len(self.ranks)

    def index_of(self, rank: int) -> int:
        """Position of a machine rank within this group."""
        return self.ranks.index(rank)

    # -- collectives --------------------------------------------------------------

    def bcast(self, block: Block, root_index: int, phase: str) -> Dict[int, Block]:
        """Broadcast *block* from the member at *root_index* to the whole group.

        Returns ``{machine_rank: received_block}``; every member (including
        the root) gets an independent copy.
        """
        require(0 <= root_index < self.size,
                f"root index {root_index} out of range [0, {self.size})")
        cost = cc.bcast_cost(block.words, self.size)
        self.vm.charge_comm_group(self.ranks, cost, phase)
        return {r: block.copy() for r in self.ranks}

    def reduce(self, contributions: Mapping[int, Block], root_index: int, phase: str) -> Block:
        """Element-wise sum of one contribution per member, delivered to the root."""
        blocks = self._collect(contributions)
        require(0 <= root_index < self.size,
                f"root index {root_index} out of range [0, {self.size})")
        cost = cc.reduce_cost(blocks[0].words, self.size)
        self.vm.charge_comm_group(self.ranks, cost, phase)
        return _sum_blocks(blocks)

    def allreduce(self, contributions: Mapping[int, Block], phase: str) -> Dict[int, Block]:
        """Element-wise sum of one contribution per member, delivered to all."""
        blocks = self._collect(contributions)
        cost = cc.allreduce_cost(blocks[0].words, self.size)
        self.vm.charge_comm_group(self.ranks, cost, phase)
        total = _sum_blocks(blocks)
        return {r: total.copy() for r in self.ranks}

    def allgather(self, contributions: Mapping[int, Block], phase: str) -> List[Block]:
        """Concatenation (as a list in group order), delivered to all members.

        Returns the gathered list once; assembling it into a matrix is
        layout-specific and done by the caller (each member receives the
        same content, so a single list is returned rather than per-rank
        copies).
        """
        blocks = self._collect(contributions)
        result_words = sum(b.words for b in blocks)
        cost = cc.allgather_cost(result_words, self.size)
        self.vm.charge_comm_group(self.ranks, cost, phase)
        return [b.copy() for b in blocks]

    def _collect(self, contributions: Mapping[int, Block]) -> List[Block]:
        require(set(contributions.keys()) == set(self.ranks),
                "every communicator member must contribute exactly one block; "
                f"got ranks {sorted(contributions)} for group {sorted(self.ranks)}")
        blocks = [contributions[r] for r in self.ranks]
        first = blocks[0].shape
        for b in blocks[1:]:
            require(b.shape == first,
                    f"collective contributions must share a shape; got {first} and {b.shape}")
        return blocks

    def __repr__(self) -> str:  # pragma: no cover
        return f"Communicator(size={self.size}, ranks={self.ranks})"


def pairwise_swap(vm: VirtualMachine, rank_a: int, rank_b: int,
                  block_a: Block, block_b: Block, phase: str) -> Tuple[Block, Block]:
    """Point-to-point exchange used by the global Transpose.

    Rank ``a`` receives ``block_b`` and vice versa; a self-exchange (on the
    grid diagonal) is free, matching the paper's ``delta(P)`` factor in
    ``T_Transp``.
    """
    if rank_a == rank_b:
        return block_a, block_b
    require(block_a.words == block_b.words,
            f"transpose partners must exchange equal volumes, got {block_a.shape} vs {block_b.shape}")
    cost = cc.transpose_cost(block_a.words, 2)
    vm.charge_comm_pair(rank_a, rank_b, cost, phase)
    return block_b.copy(), block_a.copy()


def _sum_blocks(blocks: List[Block]) -> Block:
    """Element-wise sum, dispatching on backend."""
    first = blocks[0]
    if isinstance(first, SymbolicBlock):
        return SymbolicBlock(first.shape)
    # Explicit float64 accumulator: integer (or lower-precision) blocks
    # must sum at double precision whatever np.zeros' default becomes.
    total = np.zeros(first.shape, dtype=np.float64)
    for b in blocks:
        total += b.data  # type: ignore[union-attr]
    return NumericBlock(total)
