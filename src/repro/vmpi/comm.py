"""Communicators: collectives over ordered groups of virtual ranks.

A :class:`Communicator` is an ordered group of machine ranks (the order is
the group's coordinate order along the grid dimension it was sliced from,
matching MPI communicator semantics).  Collectives move :class:`Block`
payloads between ranks *and* charge the paper's butterfly cost formulas to
every participant through the machine.

The group is held as a numpy rank array that is handed **directly** to the
machine's vectorized charging path -- no per-rank Python loop runs on the
hot path.  Rank-to-group-index lookups go through a cached mapping
(computed once, O(1) per :meth:`Communicator.index_of` call).

Numeric payloads are copied on delivery so no two ranks ever alias a
buffer.  Symbolic payloads are immutable shape-only values, so collectives
return one **shared** block for the whole group (wrapped in a
:class:`SharedBlockMap` where a per-rank mapping is expected) instead of
materializing per-rank dicts -- delivery is O(1) memory regardless of the
group size.  Reductions on symbolic blocks validate shapes and return a
shape -- arithmetically free, exactly like the cost model's
``beta >> gamma`` assumption.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.costmodel import collectives as cc
from repro.utils.validation import require
from repro.vmpi.datatypes import (
    Block,
    NumericBlock,
    SharedBlockMap,
    SymbolicBlock,
)
from repro.vmpi.machine import VirtualMachine


class Communicator:
    """An ordered group of virtual ranks supporting MPI-style collectives."""

    __slots__ = ("vm", "_ranks_arr", "_ranks_tuple", "_index")

    def __init__(self, vm: VirtualMachine, ranks: Union[Sequence[int], np.ndarray]):
        arr = np.ascontiguousarray(np.asarray(ranks, dtype=np.intp))
        require(arr.ndim == 1 and arr.size > 0,
                "a communicator needs at least one rank")
        # Two-step on purpose: require() builds its message eagerly, and
        # arr.tolist() on a large group is too expensive for this hot path.
        if np.unique(arr).size != arr.size:
            require(False,
                    f"communicator ranks must be distinct, got {arr.tolist()}")
        lo, hi = int(arr.min()), int(arr.max())
        require(0 <= lo and hi < vm.num_ranks,
                f"rank {lo if lo < 0 else hi} out of range [0, {vm.num_ranks})")
        self.vm = vm
        self._ranks_arr = arr
        self._ranks_tuple: Optional[Tuple[int, ...]] = None
        self._index: Optional[Dict[int, int]] = None

    @property
    def ranks(self) -> Tuple[int, ...]:
        """The group as an ordered tuple of machine ranks."""
        if self._ranks_tuple is None:
            self._ranks_tuple = tuple(self._ranks_arr.tolist())
        return self._ranks_tuple

    @property
    def ranks_array(self) -> np.ndarray:
        """The group as an intp ndarray (passed straight to the machine)."""
        return self._ranks_arr

    @property
    def size(self) -> int:
        return self._ranks_arr.size

    def index_of(self, rank: int) -> int:
        """Position of a machine rank within this group.

        Backed by a rank-to-index mapping computed once (on first lookup)
        and cached, so repeated calls are O(1) instead of the O(p) linear
        scan a ``list.index`` would cost on large groups.
        """
        index = self._index
        if index is None:
            index = self._index = {
                r: i for i, r in enumerate(self._ranks_arr.tolist())
            }
        try:
            return index[rank]
        except KeyError:
            raise ValueError(f"rank {rank} is not a member of {self!r}") from None

    # -- collectives --------------------------------------------------------------

    def bcast(self, block: Block, root_index: int, phase: str) -> Mapping[int, Block]:
        """Broadcast *block* from the member at *root_index* to the whole group.

        Returns ``{machine_rank: received_block}``; every member (including
        the root) gets an independent copy.  Symbolic blocks are immutable,
        so the "copies" are one shared block for the whole group.
        """
        require(0 <= root_index < self.size,
                f"root index {root_index} out of range [0, {self.size})")
        cost = cc.bcast_cost(block.words, self.size)
        self.vm.charge_comm_group(self._ranks_arr, cost, phase)
        if isinstance(block, SymbolicBlock):
            return SharedBlockMap(self._ranks_arr, block)
        return {r: block.copy() for r in self._ranks_arr.tolist()}

    def reduce(self, contributions: Mapping[int, Block], root_index: int, phase: str) -> Block:
        """Element-wise sum of one contribution per member, delivered to the root."""
        blocks = self._collect(contributions)
        require(0 <= root_index < self.size,
                f"root index {root_index} out of range [0, {self.size})")
        cost = cc.reduce_cost(blocks[0].words, self.size)
        self.vm.charge_comm_group(self._ranks_arr, cost, phase)
        return _sum_blocks(blocks)

    def allreduce(self, contributions: Mapping[int, Block], phase: str) -> Mapping[int, Block]:
        """Element-wise sum of one contribution per member, delivered to all."""
        blocks = self._collect(contributions)
        cost = cc.allreduce_cost(blocks[0].words, self.size)
        self.vm.charge_comm_group(self._ranks_arr, cost, phase)
        total = _sum_blocks(blocks)
        if isinstance(total, SymbolicBlock):
            return SharedBlockMap(self._ranks_arr, total)
        return {r: total.copy() for r in self._ranks_arr.tolist()}

    def allgather(self, contributions: Mapping[int, Block], phase: str) -> List[Block]:
        """Concatenation (as a list in group order), delivered to all members.

        Returns the gathered list once; assembling it into a matrix is
        layout-specific and done by the caller (each member receives the
        same content, so a single list is returned rather than per-rank
        copies).
        """
        blocks = self._collect(contributions)
        result_words = sum(b.words for b in blocks)
        cost = cc.allgather_cost(result_words, self.size)
        self.vm.charge_comm_group(self._ranks_arr, cost, phase)
        return [b.copy() for b in blocks]

    def _collect(self, contributions: Mapping[int, Block]) -> List[Block]:
        members = self._ranks_arr.tolist()
        if isinstance(contributions, SharedBlockMap):
            # One shared block for every member: membership and shape
            # uniformity hold by construction; only the rank sets must agree.
            require(contributions.rank_set() == (self._rank_set()),
                    "every communicator member must contribute exactly one block; "
                    f"got ranks {sorted(contributions)} for group {sorted(members)}")
            block = contributions.block
            return [block] * len(members)
        require(set(contributions.keys()) == self._rank_set(),
                "every communicator member must contribute exactly one block; "
                f"got ranks {sorted(contributions)} for group {sorted(members)}")
        blocks = [contributions[r] for r in members]
        first = blocks[0].shape
        for b in blocks[1:]:
            require(b.shape == first,
                    f"collective contributions must share a shape; got {first} and {b.shape}")
        return blocks

    def _rank_set(self) -> frozenset:
        return frozenset(self._ranks_arr.tolist())

    def __repr__(self) -> str:  # pragma: no cover
        return f"Communicator(size={self.size}, ranks={self.ranks})"


def pairwise_swap(vm: VirtualMachine, rank_a: int, rank_b: int,
                  block_a: Block, block_b: Block, phase: str) -> Tuple[Block, Block]:
    """Point-to-point exchange used by the global Transpose.

    Rank ``a`` receives ``block_b`` and vice versa; a self-exchange (on the
    grid diagonal) is free, matching the paper's ``delta(P)`` factor in
    ``T_Transp``.
    """
    if rank_a == rank_b:
        return block_a, block_b
    require(block_a.words == block_b.words,
            f"transpose partners must exchange equal volumes, got {block_a.shape} vs {block_b.shape}")
    cost = cc.transpose_cost(block_a.words, 2)
    vm.charge_comm_pair(rank_a, rank_b, cost, phase)
    return block_b.copy(), block_a.copy()


def _sum_blocks(blocks: List[Block]) -> Block:
    """Element-wise sum, dispatching on backend."""
    first = blocks[0]
    if isinstance(first, SymbolicBlock):
        return SymbolicBlock(first.shape)
    # Explicit float64 accumulator: integer (or lower-precision) blocks
    # must sum at double precision whatever np.zeros' default becomes.
    total = np.zeros(first.shape, dtype=np.float64)
    for b in blocks:
        total += b.data  # type: ignore[union-attr]
    return NumericBlock(total)
