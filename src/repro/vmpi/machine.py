"""The virtual machine: rank states, ledgers, BSP clocks.

A :class:`VirtualMachine` owns ``P`` rank states.  Each rank has

* a :class:`~repro.costmodel.ledger.Ledger` accumulating
  ``(messages, words, flops)`` with phase attribution, and
* a *clock* (seconds under the machine's
  :class:`~repro.costmodel.params.CostParams`).

Clocks implement BSP critical-path semantics:

* local computation advances only that rank's clock by ``flops * gamma``;
* a collective over a group first synchronizes the group (every member's
  clock jumps to the group maximum -- a collective cannot complete before
  its slowest participant arrives) and then adds the collective's
  ``alpha``/``beta`` time to every member.

The modeled execution time of an algorithm is the maximum clock over all
ranks when it finishes, which is exactly the critical-path cost the paper's
tables analyze.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.costmodel.collectives import CollectiveCost
from repro.costmodel.ledger import CostReport, Ledger
from repro.costmodel.params import ABSTRACT_MACHINE, CostParams, MachineSpec
from repro.utils.validation import check_positive_int


class TraceEvent:
    """One traced interval on one rank's timeline."""

    __slots__ = ("rank", "phase", "kind", "start", "end")

    def __init__(self, rank: int, phase: str, kind: str, start: float, end: float):
        self.rank = rank
        self.phase = phase
        self.kind = kind          # "compute", "collective" or "p2p"
        self.start = start
        self.end = end

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TraceEvent(rank={self.rank}, phase={self.phase!r}, "
                f"kind={self.kind}, [{self.start:.3g}, {self.end:.3g}])")


class _RankState:
    """Per-rank mutable state: ledger + clock."""

    __slots__ = ("rank", "ledger", "clock")

    def __init__(self, rank: int):
        self.rank = rank
        self.ledger = Ledger()
        self.clock = 0.0


class VirtualMachine:
    """A simulated distributed-memory machine with ``num_ranks`` processes.

    Parameters
    ----------
    num_ranks:
        Number of virtual MPI processes.
    machine:
        Machine preset supplying the alpha-beta-gamma rates used to advance
        clocks.  Defaults to the unit-rate abstract machine, under which the
        critical-path "time" equals ``alpha_count + word_count + flop_count``
        along the critical path.

    Notes
    -----
    The machine is deliberately unaware of grids and matrices; those live in
    :mod:`repro.vmpi.grid` and :mod:`repro.vmpi.distmatrix` and only call
    back into :meth:`charge_comm_group` / :meth:`charge_flops`.
    """

    def __init__(self, num_ranks: int, machine: MachineSpec = ABSTRACT_MACHINE,
                 trace: bool = False):
        check_positive_int(num_ranks, "num_ranks")
        self.num_ranks = num_ranks
        self.machine = machine
        self.params: CostParams = machine.cost_params()
        self._ranks: List[_RankState] = [_RankState(r) for r in range(num_ranks)]
        #: When tracing is enabled, every charge appends a
        #: :class:`TraceEvent` here (see :mod:`repro.vmpi.trace` for the
        #: Gantt renderer).  Off by default: large runs produce many events.
        self.trace_enabled = trace
        self.events: List[TraceEvent] = []

    # -- charging -----------------------------------------------------------------

    def charge_flops(self, rank: int, flops: float, phase: str) -> None:
        """Charge *flops* of local computation to *rank* under *phase*."""
        state = self._ranks[rank]
        state.ledger.charge_flops(flops, phase)
        start = state.clock
        state.clock += flops * self.params.gamma
        if self.trace_enabled and state.clock > start:
            self.events.append(TraceEvent(rank, phase, "compute", start, state.clock))

    def charge_comm_group(self, ranks: Sequence[int], cost: CollectiveCost, phase: str) -> None:
        """Charge one collective over *ranks*: synchronize, then add its time.

        Every participant is charged the same ``(messages, words)`` -- the
        butterfly formulas in :mod:`repro.costmodel.collectives` are already
        per-participant costs.
        """
        if not ranks:
            return
        states = [self._ranks[r] for r in ranks]
        sync_point = max(s.clock for s in states)
        step = self.params.alpha * cost.messages + self.params.beta * cost.words
        kind = "p2p" if len(ranks) == 2 and cost.messages == 1 else "collective"
        for s in states:
            s.ledger.charge_comm(cost, phase)
            start = s.clock
            s.clock = sync_point + step
            if self.trace_enabled and s.clock > start:
                self.events.append(TraceEvent(s.rank, phase, kind, start, s.clock))

    def charge_comm_pair(self, rank_a: int, rank_b: int, cost: CollectiveCost, phase: str) -> None:
        """Charge a pairwise exchange (used by Transpose)."""
        if rank_a == rank_b:
            return
        self.charge_comm_group((rank_a, rank_b), cost, phase)

    def barrier(self, ranks: Optional[Sequence[int]] = None) -> None:
        """Synchronize clocks (no cost charge).  Defaults to all ranks."""
        states = self._ranks if ranks is None else [self._ranks[r] for r in ranks]
        if not states:
            return
        sync_point = max(s.clock for s in states)
        for s in states:
            s.clock = sync_point

    # -- inspection ---------------------------------------------------------------

    def clock_of(self, rank: int) -> float:
        return self._ranks[rank].clock

    def ledger_of(self, rank: int) -> Ledger:
        return self._ranks[rank].ledger

    @property
    def elapsed(self) -> float:
        """Current critical-path time (max clock over ranks)."""
        return max(s.clock for s in self._ranks)

    def report(self) -> CostReport:
        """Aggregate all ledgers and clocks into a :class:`CostReport`."""
        return CostReport.from_ledgers(
            (s.ledger for s in self._ranks),
            (s.clock for s in self._ranks),
        )

    def reset(self) -> None:
        """Zero every ledger and clock (reuse the machine across experiments)."""
        for s in self._ranks:
            s.ledger.reset()
            s.clock = 0.0

    def __repr__(self) -> str:  # pragma: no cover
        return f"VirtualMachine(num_ranks={self.num_ranks}, machine={self.machine.name!r})"
