"""The virtual machine: array-backed rank state, interned phases, BSP clocks.

A :class:`VirtualMachine` models ``P`` ranks without materializing ``P``
Python objects.  All mutable state lives in numpy arrays:

* one **clock vector** of shape ``(P,)`` holding every rank's BSP clock
  (seconds under the machine's
  :class:`~repro.costmodel.params.CostParams`), and
* a **ledger accumulator**: per interned phase, a ``(3, P)`` plane of
  ``(messages, words, flops)`` per rank, plus a running ``(3, P)`` total
  plane and a per-phase boolean *touched* mask recording which ranks were
  ever charged under that phase.

Phase strings (e.g. ``"cfr3d.mm3d.bcast"``) are interned to integer ids at
first use, so the hot charging path never hashes a string more than once
per distinct phase.  Every charge is a vectorized slice operation --
``clock[ranks] = clock[ranks].max() + step`` -- which is what makes
symbolic simulations tractable at ``P = 2**16`` and beyond: cost per
charge is O(group) in C, not O(group) Python object traffic.

Clocks implement BSP critical-path semantics, unchanged from the original
per-rank-object machine (results are bit-identical):

* local computation advances only that rank's clock by ``flops * gamma``;
* a collective over a group first synchronizes the group (every member's
  clock jumps to the group maximum -- a collective cannot complete before
  its slowest participant arrives) and then adds the collective's
  ``alpha``/``beta`` time to every member.

The modeled execution time of an algorithm is the maximum clock over all
ranks when it finishes, which is exactly the critical-path cost the paper's
tables analyze.

Tracing is a **pluggable sink**: pass ``trace=True`` (or an explicit
:class:`TraceSink`) and every charge emits :class:`TraceEvent` intervals;
leave it off and the charging path pays a single ``is None`` check --
tracing is zero-cost when disabled.

The public read API -- :meth:`VirtualMachine.clock_of`,
:meth:`VirtualMachine.ledger_of` (a
:class:`~repro.costmodel.ledger.LedgerView` over the arrays),
:meth:`VirtualMachine.report` -- is unchanged from the per-rank-object
machine.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.costmodel.collectives import CollectiveCost
from repro.costmodel.ledger import Cost, CostReport, LedgerView
from repro.costmodel.params import ABSTRACT_MACHINE, CostParams, MachineSpec
from repro.utils.validation import check_positive_int

RankGroup = Union[Sequence[int], np.ndarray]


class TraceEvent:
    """One traced interval on one rank's timeline."""

    __slots__ = ("rank", "phase", "kind", "start", "end")

    def __init__(self, rank: int, phase: str, kind: str, start: float, end: float):
        self.rank = rank
        self.phase = phase
        self.kind = kind          # "compute", "collective" or "p2p"
        self.start = start
        self.end = end

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TraceEvent(rank={self.rank}, phase={self.phase!r}, "
                f"kind={self.kind}, [{self.start:.3g}, {self.end:.3g}])")


class TraceSink:
    """Receiver for :class:`TraceEvent` streams (pluggable tracing backend).

    The machine calls :meth:`record` once per rank-interval; when no sink
    is attached the charging path skips event construction entirely, so
    tracing costs nothing unless requested.  Subclass to stream events
    elsewhere (a file, an aggregator); :class:`TraceRecorder` is the
    in-memory list sink the renderers in :mod:`repro.vmpi.trace` consume.
    """

    def record(self, event: TraceEvent) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def clear(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class TraceRecorder(TraceSink):
    """The default sink: collect every event in an in-memory list."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def record(self, event: TraceEvent) -> None:
        self.events.append(event)

    def clear(self) -> None:
        self.events = []


class VirtualMachine:
    """A simulated distributed-memory machine with ``num_ranks`` processes.

    Parameters
    ----------
    num_ranks:
        Number of virtual MPI processes.
    machine:
        Machine preset supplying the alpha-beta-gamma rates used to advance
        clocks.  Defaults to the unit-rate abstract machine, under which the
        critical-path "time" equals ``alpha_count + word_count + flop_count``
        along the critical path.
    trace:
        Attach a :class:`TraceRecorder` so every charge records
        :class:`TraceEvent` intervals (see :mod:`repro.vmpi.trace` for the
        Gantt renderer).  Off by default: large runs produce many events.
    trace_sink:
        An explicit :class:`TraceSink` to attach instead (overrides
        ``trace``).

    Notes
    -----
    The machine is deliberately unaware of grids and matrices; those live in
    :mod:`repro.vmpi.grid` and :mod:`repro.vmpi.distmatrix` and only call
    back into :meth:`charge_comm_group` / :meth:`charge_flops`.

    Rank groups passed to the charging methods must contain **distinct**
    ranks (MPI communicator semantics; :class:`repro.vmpi.comm.Communicator`
    enforces it).  ndarray groups are used as-is -- callers holding
    precomputed rank arrays avoid any per-call conversion.
    """

    def __init__(self, num_ranks: int, machine: MachineSpec = ABSTRACT_MACHINE,
                 trace: bool = False, trace_sink: Optional[TraceSink] = None):
        check_positive_int(num_ranks, "num_ranks")
        self.num_ranks = num_ranks
        self.machine = machine
        self.params: CostParams = machine.cost_params()
        self._clock = np.zeros(num_ranks)
        # Phase interning: name -> id at first use; per-phase (3, P) planes
        # (rows: messages, words, flops) plus a touched mask so reports can
        # reconstruct exactly which ranks ever saw a phase.
        self._phase_ids: Dict[str, int] = {}
        self._phase_names: List[str] = []
        self._planes: List[Optional[np.ndarray]] = []
        self._touched: List[Optional[np.ndarray]] = []
        # Once a phase has touched every rank its mask never changes again;
        # this flag lets the bulk charging paths skip the mask scatter.
        self._touched_all: List[bool] = []
        # Lazy phase planes: pid -> (plane_tpl, touched_tpl, tidx, all).
        # Compiled-schedule replay (repro.sched.replay) leaves a phase's
        # whole-machine plane *virtual* -- template-sized state plus the
        # rank -> template-position gather index -- because reports only
        # ever take a max over it (order-independent, so template max ==
        # expanded max, bit for bit).  Any charge or per-rank read that
        # needs the concrete (3, P) array materializes it on demand; the
        # corresponding `_planes`/`_touched` slots hold None until then.
        self._lazy: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray,
                                    bool]] = {}
        self._total = np.zeros((3, num_ranks))
        self._sink: Optional[TraceSink] = (
            trace_sink if trace_sink is not None
            else (TraceRecorder() if trace else None))

    # -- tracing ------------------------------------------------------------------

    @property
    def trace_enabled(self) -> bool:
        """Whether a trace sink is attached (events are being recorded)."""
        return self._sink is not None

    @property
    def trace_sink(self) -> Optional[TraceSink]:
        return self._sink

    @property
    def events(self) -> List[TraceEvent]:
        """Recorded trace events (empty unless a :class:`TraceRecorder` is attached)."""
        if isinstance(self._sink, TraceRecorder):
            return self._sink.events
        return []

    # -- phase interning ----------------------------------------------------------

    def _phase_id(self, phase: str) -> int:
        pid = self._phase_ids.get(phase)
        if pid is None:
            pid = len(self._phase_names)
            self._phase_ids[phase] = pid
            self._phase_names.append(phase)
            self._planes.append(np.zeros((3, self.num_ranks)))
            self._touched.append(np.zeros(self.num_ranks, dtype=bool))
            self._touched_all.append(False)
        return pid

    def _touch(self, pid: int, idx: np.ndarray) -> None:
        if self._touched_all[pid]:
            return
        touched = self._touched[pid]
        if touched is None:
            self._materialize(pid)
            touched = self._touched[pid]
        touched[idx] = True
        # The full-coverage test is itself an O(P) scan, so only attempt it
        # when this charge could plausibly have completed the coverage --
        # phases charged through many small groups would otherwise pay a
        # whole-machine scan per charge.
        if idx.size == self.num_ranks or (idx.size * 4 >= self.num_ranks
                                          and bool(touched.all())):
            self._touched_all[pid] = True

    # -- lazy phase planes --------------------------------------------------------

    def _install_lazy(self, pid: int, plane_tpl: np.ndarray,
                      touched_tpl: np.ndarray, tidx: np.ndarray,
                      touched_all: bool) -> None:
        """Replace a phase's plane with virtual template state.

        ``tidx`` maps every machine rank to its template position and must
        cover the whole machine (the caller -- collapsed replay -- binds a
        partition of the rank space).  The concrete ``(3, P)`` plane, were
        it materialized, would be exactly ``plane_tpl[:, tidx]``.
        """
        self._lazy[pid] = (plane_tpl, touched_tpl, tidx, touched_all)
        self._planes[pid] = None
        self._touched[pid] = None
        self._touched_all[pid] = touched_all

    def _materialize(self, pid: int) -> np.ndarray:
        """Expand a lazy phase to concrete whole-machine arrays."""
        plane_tpl, touched_tpl, tidx, touched_all = self._lazy.pop(pid)
        self._planes[pid] = np.take(plane_tpl, tidx, axis=1)
        self._touched[pid] = (np.ones(tidx.size, dtype=bool) if touched_all
                              else np.take(touched_tpl, tidx))
        return self._planes[pid]

    def _plane(self, pid: int) -> np.ndarray:
        """The phase's concrete plane, materializing a lazy one on demand."""
        plane = self._planes[pid]
        return self._materialize(pid) if plane is None else plane

    def _phase_col(self, pid: int, rank: int) -> Optional[np.ndarray]:
        """One rank's (messages, words, flops) column under one phase, or
        ``None`` when the rank was never charged there.  Reads lazy planes
        in template space -- holding a :class:`LedgerView` stays free even
        when every phase of a million-rank machine is virtual."""
        lazy = self._lazy.get(pid)
        if lazy is not None:
            plane_tpl, touched_tpl, tidx, touched_all = lazy
            t = tidx[rank]
            if not (touched_all or touched_tpl[t]):
                return None
            return plane_tpl[:, t]
        if not (self._touched_all[pid] or self._touched[pid][rank]):
            return None
        return self._planes[pid][:, rank]

    @property
    def phase_names(self) -> List[str]:
        """Interned phase names, in first-use order."""
        return list(self._phase_names)

    @staticmethod
    def _as_ranks(ranks: RankGroup) -> np.ndarray:
        if isinstance(ranks, np.ndarray):
            return ranks if ranks.dtype == np.intp else ranks.astype(np.intp)
        return np.asarray(ranks, dtype=np.intp)

    # -- charging -----------------------------------------------------------------

    def charge_flops(self, rank: int, flops: float, phase: str) -> None:
        """Charge *flops* of local computation to *rank* under *phase*."""
        if flops < 0:
            raise ValueError(f"flop charge must be non-negative, got {flops}")
        pid = self._phase_id(phase)
        self._plane(pid)[2, rank] += flops
        if not self._touched_all[pid]:
            self._touched[pid][rank] = True
        self._total[2, rank] += flops
        start = self._clock[rank]
        end = start + flops * self.params.gamma
        self._clock[rank] = end
        if self._sink is not None and end > start:
            self._sink.record(TraceEvent(rank, phase, "compute",
                                         float(start), float(end)))

    def charge_flops_group(self, ranks: RankGroup, flops: float, phase: str) -> None:
        """Charge the same *flops* of local computation to every rank in *ranks*.

        Exactly equivalent to calling :meth:`charge_flops` once per rank
        (local computation on distinct ranks is independent), but one
        vectorized slice update -- the bulk path the symbolic fast paths in
        :mod:`repro.core` use when a uniform layout gives every rank an
        identical kernel invocation.
        """
        if flops < 0:
            raise ValueError(f"flop charge must be non-negative, got {flops}")
        idx = self._as_ranks(ranks)
        if idx.size == 0:
            return
        self._charge_flops_group_id(idx, flops, self._phase_id(phase))

    def _charge_flops_group_id(self, idx: np.ndarray, flops: float,
                               pid: int) -> None:
        """:meth:`charge_flops_group` with a validated index array and a
        pre-interned phase id -- the string-free inner path compiled-schedule
        replay (:mod:`repro.sched.replay`) drives per op."""
        self._plane(pid)[2, idx] += flops
        self._touch(pid, idx)
        self._total[2, idx] += flops
        step = flops * self.params.gamma
        if self._sink is None:
            self._clock[idx] += step
            return
        starts = self._clock[idx]
        ends = starts + step
        self._clock[idx] = ends
        phase = self._phase_names[pid]
        for rank, start, end in zip(idx.tolist(), starts.tolist(), ends.tolist()):
            if end > start:
                self._sink.record(TraceEvent(rank, phase, "compute", start, end))

    def charge_comm_group(self, ranks: RankGroup, cost: CollectiveCost,
                          phase: str) -> None:
        """Charge one collective over *ranks*: synchronize, then add its time.

        Every participant is charged the same ``(messages, words)`` -- the
        butterfly formulas in :mod:`repro.costmodel.collectives` are already
        per-participant costs.
        """
        idx = self._as_ranks(ranks)
        if idx.size == 0:
            return
        self._charge_comm_group_id(idx, cost, self._phase_id(phase))

    def _charge_comm_group_id(self, idx: np.ndarray, cost: CollectiveCost,
                              pid: int) -> None:
        """:meth:`charge_comm_group` with a validated index array and a
        pre-interned phase id (the replay-path internal)."""
        plane = self._plane(pid)
        plane[0, idx] += cost.messages
        plane[1, idx] += cost.words
        self._touch(pid, idx)
        self._total[0, idx] += cost.messages
        self._total[1, idx] += cost.words
        clock = self._clock
        step = self.params.alpha * cost.messages + self.params.beta * cost.words
        if self._sink is None:
            clock[idx] = clock[idx].max() + step
            return
        starts = clock[idx]
        end = float(starts.max() + step)
        clock[idx] = end
        phase = self._phase_names[pid]
        kind = "p2p" if idx.size == 2 and cost.messages == 1 else "collective"
        for rank, start in zip(idx.tolist(), starts.tolist()):
            if end > start:
                self._sink.record(TraceEvent(rank, phase, kind, start, end))

    def charge_comm_groups(self, groups: np.ndarray, cost: CollectiveCost,
                           phase: str) -> None:
        """Charge one collective per row of a ``(G, s)`` rank matrix.

        All ``G`` groups must be pairwise disjoint and are charged the same
        *cost*; because disjoint groups touch disjoint clock and ledger
        entries, this is exactly equivalent to ``G`` sequential
        :meth:`charge_comm_group` calls, collapsed into a handful of numpy
        operations.  This is the bulk path for schedule steps that sweep a
        whole communicator family (every depth fiber of an Allreduce, every
        transpose pair) in one machine call.
        """
        g = self._as_ranks(np.asarray(groups))
        if g.size == 0:
            return
        if g.ndim != 2:
            raise ValueError(f"group matrix must be 2D (groups x size), "
                             f"got ndim={g.ndim}")
        self._charge_comm_groups_id(g, cost, self._phase_id(phase))

    def _charge_comm_groups_id(self, g: np.ndarray, cost: CollectiveCost,
                               pid: int) -> None:
        """:meth:`charge_comm_groups` with a validated ``(G, s)`` matrix and a
        pre-interned phase id (the replay-path internal)."""
        flat = g.reshape(-1)
        plane = self._plane(pid)
        plane[0, flat] += cost.messages
        plane[1, flat] += cost.words
        self._touch(pid, flat)
        self._total[0, flat] += cost.messages
        self._total[1, flat] += cost.words
        clock = self._clock
        step = self.params.alpha * cost.messages + self.params.beta * cost.words
        starts = clock[g]                        # (G, s)
        ends = starts.max(axis=1) + step         # (G,)
        clock[flat] = np.repeat(ends, g.shape[1])
        if self._sink is None:
            return
        phase = self._phase_names[pid]
        kind = "p2p" if g.shape[1] == 2 and cost.messages == 1 else "collective"
        for row, end in zip(range(g.shape[0]), ends.tolist()):
            for rank, start in zip(g[row].tolist(), starts[row].tolist()):
                if end > start:
                    self._sink.record(TraceEvent(rank, phase, kind, start, end))

    def charge_comm_pair(self, rank_a: int, rank_b: int, cost: CollectiveCost,
                         phase: str) -> None:
        """Charge a pairwise exchange (used by Transpose)."""
        if rank_a == rank_b:
            return
        self.charge_comm_group((rank_a, rank_b), cost, phase)

    def barrier(self, ranks: Optional[RankGroup] = None) -> None:
        """Synchronize clocks (no cost charge).  Defaults to all ranks."""
        clock = self._clock
        if ranks is None:
            clock[:] = clock.max()
            return
        idx = self._as_ranks(ranks)
        if idx.size == 0:
            return
        clock[idx] = clock[idx].max()

    # -- inspection ---------------------------------------------------------------

    def clock_of(self, rank: int) -> float:
        return float(self._clock[rank])

    def ledger_of(self, rank: int) -> LedgerView:
        """Read-only :class:`~repro.costmodel.ledger.LedgerView` of one rank."""
        return LedgerView(self, rank)

    @property
    def elapsed(self) -> float:
        """Current critical-path time (max clock over ranks)."""
        return float(self._clock.max())

    def report(self) -> CostReport:
        """Aggregate the ledger planes and clocks into a :class:`CostReport`.

        Pure numpy reductions; totals across ranks accumulate
        left-to-right (``np.add.accumulate``) so they match, bit for bit,
        the sequential per-rank summation the per-rank-object machine
        performed.
        """
        n = self.num_ranks
        # Sequential (not pairwise) summation across ranks for bit-identical
        # totals with the historical rank-by-rank accumulation.
        totals = np.add.accumulate(self._total, axis=1)[:, -1]
        total = Cost(float(totals[0]), float(totals[1]), float(totals[2]))
        max_cost = Cost(float(self._total[0].max()),
                        float(self._total[1].max()),
                        float(self._total[2].max()))
        mean = Cost(total.messages / n, total.words / n, total.flops / n)
        phase_max: Dict[str, Cost] = {}
        for pid, name in enumerate(self._phase_names):
            lazy = self._lazy.get(pid)
            if lazy is not None:
                # Virtual plane: its expansion is a permuted tiling of the
                # template, and max is order-independent, so reducing the
                # template gives the bit-identical result in O(template).
                plane_tpl, touched_tpl, _, touched_all = lazy
                if touched_all:
                    vals = plane_tpl
                else:
                    if not touched_tpl.any():
                        continue
                    vals = plane_tpl[:, touched_tpl]
            elif self._touched_all[pid]:
                # Every rank saw this phase: max over the whole plane, no
                # boolean-mask copy.
                vals = self._planes[pid]
            else:
                touched = self._touched[pid]
                if not touched.any():
                    continue
                vals = self._planes[pid][:, touched]
            phase_max[name] = Cost(float(vals[0].max()),
                                   float(vals[1].max()),
                                   float(vals[2].max()))
        return CostReport(
            num_ranks=n,
            max_cost=max_cost,
            mean_cost=mean,
            total_cost=total,
            critical_path_time=float(self._clock.max()),
            phase_max=phase_max,
        )

    def reset(self) -> None:
        """Zero every ledger and clock, and clear the trace sink.

        Phase interning survives (ids stay stable across reuse); all
        accumulated costs, clocks, touched masks -- and any recorded trace
        events -- are discarded, so a reused machine starts from a truly
        clean slate.
        """
        self._clock[:] = 0.0
        self._total[:] = 0.0
        for pid in list(self._lazy):
            del self._lazy[pid]
            self._planes[pid] = np.zeros((3, self.num_ranks))
            self._touched[pid] = np.zeros(self.num_ranks, dtype=bool)
        for plane in self._planes:
            plane[:] = 0.0
        for touched in self._touched:
            touched[:] = False
        self._touched_all = [False] * len(self._touched_all)
        if self._sink is not None:
            self._sink.clear()

    def __repr__(self) -> str:  # pragma: no cover
        return f"VirtualMachine(num_ranks={self.num_ranks}, machine={self.machine.name!r})"
