"""Executable specification of the machine's charging semantics.

:class:`ReferenceMachine` re-implements the original per-rank-object
``VirtualMachine`` (one Python :class:`~repro.costmodel.ledger.Ledger` +
float clock per rank, Python-loop group charges) exactly as the seed
shipped it.  It exists as the ground truth that the vectorized
array-backed machine is checked against:

* the machine-equivalence test suite
  (``tests/test_vmpi_machine_equivalence.py``) replays recorded charge
  schedules through it and asserts bit-identical clocks, ledgers, and
  reports;
* the overhead benchmark (``benchmarks/bench_vm_overhead.py``) races it
  against the vectorized machine on identical schedules.

:class:`RecordingMachine` is a vectorized machine that also records its
charge schedule as plain tuples, and :func:`replay` drives a
:class:`ReferenceMachine` through such a schedule (batched group calls
expand to sequential per-group charges -- the semantics the vectorized
bulk paths claim to preserve).

Both recorders exist for *verification*: this module's schedule is an
untyped flat log for racing machines against each other.  The
production capture path is :class:`repro.sched.ScheduleRecorder`, which
compiles runs into typed, rank-family-templated
:class:`~repro.sched.ChargeProgram` objects that specialize to new
grid bindings and replay vectorized (see :mod:`repro.sched`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.costmodel.collectives import CollectiveCost
from repro.costmodel.ledger import CostReport, Ledger
from repro.costmodel.params import ABSTRACT_MACHINE, MachineSpec
from repro.vmpi.machine import VirtualMachine

#: One recorded charge: (kind, ranks-or-groups, payload, phase).
ScheduleEntry = Tuple[str, Optional[list], object, Optional[str]]


class ReferenceMachine:
    """The pre-vectorization machine semantics: one Python object per rank."""

    class _RankState:
        __slots__ = ("ledger", "clock")

        def __init__(self):
            self.ledger = Ledger()
            self.clock = 0.0

    def __init__(self, num_ranks: int, machine: MachineSpec = ABSTRACT_MACHINE):
        self.num_ranks = num_ranks
        self.params = machine.cost_params()
        self._ranks = [self._RankState() for _ in range(num_ranks)]

    def charge_flops(self, rank: int, flops: float, phase: str) -> None:
        state = self._ranks[rank]
        state.ledger.charge_flops(flops, phase)
        state.clock += flops * self.params.gamma

    def charge_comm_group(self, ranks: Sequence[int], cost: CollectiveCost,
                          phase: str) -> None:
        if len(ranks) == 0:
            return
        states = [self._ranks[r] for r in ranks]
        sync_point = max(s.clock for s in states)
        step = self.params.alpha * cost.messages + self.params.beta * cost.words
        for s in states:
            s.ledger.charge_comm(cost, phase)
            s.clock = sync_point + step

    def barrier(self, ranks: Optional[Sequence[int]] = None) -> None:
        states = (self._ranks if ranks is None
                  else [self._ranks[r] for r in ranks])
        if not states:
            return
        sync_point = max(s.clock for s in states)
        for s in states:
            s.clock = sync_point

    def clock_of(self, rank: int) -> float:
        return self._ranks[rank].clock

    def ledger_of(self, rank: int) -> Ledger:
        return self._ranks[rank].ledger

    def report(self) -> CostReport:
        return CostReport.from_ledgers(
            (s.ledger for s in self._ranks),
            (s.clock for s in self._ranks),
        )


class RecordingMachine(VirtualMachine):
    """A vectorized machine that also records its charge schedule.

    This is the seed-equivalence harness' recorder: a flat untyped log
    replayed through :class:`ReferenceMachine` to pin down charging
    semantics.  For reusable, rebindable programs use
    :class:`repro.sched.ScheduleRecorder` instead.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.schedule: List[ScheduleEntry] = []

    def charge_flops(self, rank, flops, phase):
        self.schedule.append(("flops", [rank], flops, phase))
        super().charge_flops(rank, flops, phase)

    def charge_flops_group(self, ranks, flops, phase):
        self.schedule.append(
            ("flops", np.asarray(ranks).reshape(-1).tolist(), flops, phase))
        super().charge_flops_group(ranks, flops, phase)

    def charge_comm_group(self, ranks, cost, phase):
        self.schedule.append(
            ("comm", [np.asarray(ranks).reshape(-1).tolist()], cost, phase))
        super().charge_comm_group(ranks, cost, phase)

    def charge_comm_groups(self, groups, cost, phase):
        self.schedule.append(("comm", np.asarray(groups).tolist(), cost, phase))
        super().charge_comm_groups(groups, cost, phase)

    def barrier(self, ranks=None):
        self.schedule.append(
            ("barrier",
             None if ranks is None else np.asarray(ranks).reshape(-1).tolist(),
             None, None))
        super().barrier(ranks)


def replay(schedule: Sequence[ScheduleEntry], num_ranks: int,
           machine: MachineSpec = ABSTRACT_MACHINE) -> ReferenceMachine:
    """Drive a :class:`ReferenceMachine` through a recorded schedule.

    Batched ``comm`` entries (a list of groups) expand to sequential
    per-group charges, exactly the loop the vectorized bulk path replaced.
    """
    ref = ReferenceMachine(num_ranks, machine)
    for kind, ranks, payload, phase in schedule:
        if kind == "flops":
            for r in ranks:
                ref.charge_flops(r, payload, phase)
        elif kind == "comm":
            for group in ranks:
                ref.charge_comm_group(group, payload, phase)
        else:
            ref.barrier(ranks)
    return ref
