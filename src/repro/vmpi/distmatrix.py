"""Distributed matrices: cyclic layout over a grid face, replicated over depth.

A :class:`DistMatrix` of global shape ``m x n`` on a grid with dims
``(dim_x, dim_y, dim_z)`` stores, at every rank ``Pi[x, y, z]``, the local
block ``A[y::dim_y, x::dim_x]`` of shape ``(m/dim_y, n/dim_x)``:

* ``y`` (grid's second axis) indexes the cyclic **row** partition,
* ``x`` (grid's first axis) indexes the cyclic **column** partition,
* ``z`` replicates the face (the paper keeps a copy of each operand on
  every 2D slice ``Pi[:, :, z]``).

The cyclic layout is load-bearing: the top-left ``n/2 x n/2`` quadrant of a
cyclically distributed matrix is exactly the top-left local half of every
block, so CFR3D's recursion (Algorithm 3) descends without redistribution.
:meth:`quadrant` exposes that.

Replication over ``z`` is a steady-state invariant -- algorithms may break
it for temporaries (e.g. MM3D's broadcast panels differ per slice) but
restore it on their outputs; :meth:`replication_spread` measures it for the
test suite.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.costmodel import collectives as cc
from repro.utils.validation import require
from repro.vmpi.datatypes import Block, NumericBlock, SymbolicBlock, join_blocks
from repro.vmpi.grid import Grid3D
from repro.vmpi.machine import VirtualMachine


class DistMatrix:
    """An ``m x n`` matrix cyclically distributed over a grid face."""

    __slots__ = ("grid", "m", "n", "blocks")

    def __init__(self, grid: Grid3D, m: int, n: int, blocks: Dict[int, Block]):
        require(m % grid.dim_y == 0,
                f"rows {m} not divisible by grid row extent dim_y={grid.dim_y}")
        require(n % grid.dim_x == 0,
                f"cols {n} not divisible by grid col extent dim_x={grid.dim_x}")
        expected = (m // grid.dim_y, n // grid.dim_x)
        if blocks.keys() != grid.rank_set:
            for (x, y, z) in grid.coords():     # slow path: name the culprit
                r = grid.rank_at(x, y, z)
                require(r in blocks,
                        f"missing block for rank {r} at coords ({x},{y},{z})")
        # Shape-check each *distinct* block object once: symbolic matrices
        # share one block across every rank, so this is O(1) there and
        # O(ranks) only when all blocks are distinct buffers (numeric).
        distinct = set(map(id, blocks.values()))
        if len(distinct) == 1:
            b = next(iter(blocks.values()))
            require(b.shape == expected,
                    f"shared block has shape {b.shape}, expected {expected}")
        else:
            checked = set()
            for r, b in blocks.items():
                key = id(b)
                if key in checked:
                    continue
                checked.add(key)
                require(b.shape == expected,
                        f"block at rank {r} has shape {b.shape}, "
                        f"expected {expected}")
        self.grid = grid
        self.m = m
        self.n = n
        self.blocks = blocks

    # -- construction -------------------------------------------------------------

    @classmethod
    def from_global(cls, grid: Grid3D, array: np.ndarray) -> "DistMatrix":
        """Distribute a global numpy array cyclically, replicated over depth."""
        arr = np.asarray(array, dtype=np.float64)
        require(arr.ndim == 2, f"need a 2D array, got ndim={arr.ndim}")
        m, n = arr.shape
        blocks: Dict[int, Block] = {}
        for (x, y, z) in grid.coords():
            blocks[grid.rank_at(x, y, z)] = NumericBlock(
                np.ascontiguousarray(arr[y::grid.dim_y, x::grid.dim_x]))
        return cls(grid, m, n, blocks)

    @classmethod
    def symbolic(cls, grid: Grid3D, m: int, n: int) -> "DistMatrix":
        """Shape-only distributed matrix for cost simulation.

        Every rank's local block is the *same* shared
        :class:`SymbolicBlock` -- shape-only blocks are immutable, so a
        million-rank symbolic matrix costs one block object.
        """
        require(m % grid.dim_y == 0, f"rows {m} not divisible by dim_y={grid.dim_y}")
        require(n % grid.dim_x == 0, f"cols {n} not divisible by dim_x={grid.dim_x}")
        shared = SymbolicBlock((m // grid.dim_y, n // grid.dim_x))
        blocks: Dict[int, Block] = dict.fromkeys(grid.all_ranks(), shared)
        return cls(grid, m, n, blocks)

    # -- geometry -----------------------------------------------------------------

    @property
    def local_rows(self) -> int:
        return self.m // self.grid.dim_y

    @property
    def local_cols(self) -> int:
        return self.n // self.grid.dim_x

    @property
    def is_numeric(self) -> bool:
        any_block = next(iter(self.blocks.values()))
        return any_block.is_numeric

    def local(self, x: int, y: int, z: int) -> Block:
        """Local block at grid coordinates ``(x, y, z)``."""
        return self.blocks[self.grid.rank_at(x, y, z)]

    # -- assembly -----------------------------------------------------------------

    def to_global(self, z: int = 0) -> np.ndarray:
        """Assemble the global matrix from slice ``z`` (numeric mode only)."""
        require(self.is_numeric, "to_global requires numeric blocks")
        out = np.empty((self.m, self.n))
        for y in range(self.grid.dim_y):
            for x in range(self.grid.dim_x):
                blk = self.local(x, y, z)
                out[y::self.grid.dim_y, x::self.grid.dim_x] = blk.data  # type: ignore[union-attr]
        return out

    def replication_spread(self) -> float:
        """Max abs difference between depth copies (0.0 when replicated)."""
        require(self.is_numeric, "replication_spread requires numeric blocks")
        worst = 0.0
        for y in range(self.grid.dim_y):
            for x in range(self.grid.dim_x):
                ref = self.local(x, y, 0).data  # type: ignore[union-attr]
                for z in range(1, self.grid.dim_z):
                    cur = self.local(x, y, z).data  # type: ignore[union-attr]
                    worst = max(worst, float(np.max(np.abs(ref - cur))) if ref.size else 0.0)
        return worst

    # -- structural operations (no communication, no flops) ------------------------

    def map_blocks(self, fn: Callable[[Block], Block], m: Optional[int] = None,
                   n: Optional[int] = None) -> "DistMatrix":
        """New DistMatrix with ``fn`` applied to every local block.

        For *structural* transformations only (quadrant extraction, local
        reshapes); computational maps must charge flops via the kernels
        layer instead.  ``fn`` is applied once per *distinct* block object
        and the result shared among its owners -- on shared-block symbolic
        matrices the transformation runs once, not once per rank.
        """
        if len(set(map(id, self.blocks.values()))) == 1:
            shared = fn(next(iter(self.blocks.values())))
            new_blocks: Dict[int, Block] = dict.fromkeys(self.blocks, shared)
        else:
            mapped: Dict[int, Block] = {}
            new_blocks = {}
            for r, b in self.blocks.items():
                key = id(b)
                nb = mapped.get(key)
                if nb is None:
                    nb = mapped[key] = fn(b)
                new_blocks[r] = nb
        return DistMatrix(self.grid, self.m if m is None else m,
                          self.n if n is None else n, new_blocks)

    def quadrant(self, i: int, j: int) -> "DistMatrix":
        """Global quadrant ``(i, j)`` as a new ``m/2 x n/2`` DistMatrix.

        Pure local slicing thanks to the cyclic layout; no communication.
        """
        require(self.m % (2 * self.grid.dim_y) == 0 and self.n % (2 * self.grid.dim_x) == 0,
                f"matrix {self.m}x{self.n} cannot be quartered on grid {self.grid.dims}")
        return self.map_blocks(lambda b: b.quadrant(i, j), m=self.m // 2, n=self.n // 2)

    @staticmethod
    def assemble_quadrants(a11: "DistMatrix", a12: "DistMatrix",
                           a21: "DistMatrix", a22: "DistMatrix") -> "DistMatrix":
        """Inverse of :meth:`quadrant`: rebuild the doubled matrix locally."""
        g = a11.grid
        for other in (a12, a21, a22):
            require(other.grid is g, "quadrants must live on the same grid")
        quadrants = (a11, a12, a21, a22)
        if all(len(set(map(id, q.blocks.values()))) == 1 for q in quadrants):
            # One shared block per quadrant (symbolic): join once, share.
            shared = join_blocks(*(next(iter(q.blocks.values())) for q in quadrants))
            return DistMatrix(g, a11.m + a21.m, a11.n + a12.n,
                              dict.fromkeys(a11.blocks, shared))
        blocks: Dict[int, Block] = {}
        memo: Dict[Tuple[int, int, int, int], Block] = {}
        for r in a11.blocks:
            quads = (a11.blocks[r], a12.blocks[r], a21.blocks[r], a22.blocks[r])
            key = (id(quads[0]), id(quads[1]), id(quads[2]), id(quads[3]))
            joined = memo.get(key)
            if joined is None:
                joined = memo[key] = join_blocks(*quads)
            blocks[r] = joined
        return DistMatrix(g, a11.m + a21.m, a11.n + a12.n, blocks)

    def column_panel(self, col_lo: int, col_hi: int) -> "DistMatrix":
        """Global column range ``[col_lo, col_hi)`` as a new DistMatrix.

        Requires both bounds to be multiples of the column grid extent so
        the panel's columns remain cyclically distributed with the same
        owner mapping (global column ``col_lo + i`` is owned by
        ``x = i mod dim_x``).  Pure local slicing, no communication.
        """
        dx = self.grid.dim_x
        require(col_lo % dx == 0 and col_hi % dx == 0,
                f"panel bounds [{col_lo}, {col_hi}) must be multiples of dim_x={dx}")
        require(0 <= col_lo < col_hi <= self.n,
                f"panel bounds [{col_lo}, {col_hi}) out of range for n={self.n}")
        lo, hi = col_lo // dx, col_hi // dx
        return self.map_blocks(lambda b: b.columns(lo, hi), n=col_hi - col_lo)

    def reindexed(self, grid: Grid3D, m: Optional[int] = None) -> "DistMatrix":
        """View this matrix's blocks on a subgrid (pure bookkeeping).

        Used by CA-CQR to hand each cubic subcube its slice of rows: the
        blocks do not move, only the (grid, global row count) bookkeeping
        changes.  The caller is responsible for the row-order relabeling
        being consistent, which it is for cyclic layouts restricted to a
        contiguous y-group.
        """
        blocks = {r: self.blocks[r] for r in grid.all_ranks()}
        new_m = self.m if m is None else m
        return DistMatrix(grid, new_m, self.n, blocks)


class Replicated:
    """A small matrix fully replicated on a set of ranks (e.g. 1D-CQR's R).

    Unlike :class:`DistMatrix` there is no partitioning: every listed rank
    owns a complete copy.  Numeric copies are independent buffers.
    """

    __slots__ = ("shape", "blocks")

    def __init__(self, shape: Tuple[int, int], blocks: Dict[int, Block]):
        require(len(blocks) > 0, "Replicated needs at least one rank")
        for r, b in blocks.items():
            require(b.shape == shape,
                    f"replicated block at rank {r} has shape {b.shape}, expected {shape}")
        self.shape = shape
        self.blocks = blocks

    @property
    def is_numeric(self) -> bool:
        return next(iter(self.blocks.values())).is_numeric

    def block(self, rank: int) -> Block:
        return self.blocks[rank]

    def to_global(self) -> np.ndarray:
        """The replicated value (numeric mode), verified consistent across ranks."""
        require(self.is_numeric, "to_global requires numeric blocks")
        values = [b.data for b in self.blocks.values()]  # type: ignore[union-attr]
        ref = values[0]
        for v in values[1:]:
            require(np.array_equal(ref, v),
                    "replicated copies diverged; algorithm bug upstream")
        return ref.copy()


@lru_cache(maxsize=None)
def _triu_pairs(dim: int):
    """Cached strict upper-triangle indices (CFR3D recursions transpose on
    the same grid extent thousands of times)."""
    return np.triu_indices(dim, k=1)


def dist_transpose(vm: VirtualMachine, a: DistMatrix, phase: str) -> DistMatrix:
    """Global transpose: pairwise exchange ``(x,y,z) <-> (y,x,z)`` + local ``.T``.

    Matches the paper's ``Transpose`` collective (Section II-B): every rank
    swaps its local block with its partner via point-to-point communication
    (free on the grid diagonal), then transposes locally.  Requires a square
    face and a square global matrix (the only case CFR3D needs).

    All exchange pairs are disjoint and move equal volumes (the cyclic
    layout is uniform), so the whole transpose is charged as **one**
    vectorized machine call over a ``(pairs, 2)`` rank matrix; in symbolic
    mode the result is a single shared transposed block.
    """
    g = a.grid
    require(g.dim_x == g.dim_y, f"transpose needs a square grid face, got {g.dims}")
    require(a.m == a.n, f"dist_transpose handles square matrices, got {a.m}x{a.n}")
    local_shape = (a.local_rows, a.local_cols)
    dim = g.dim_x

    # Off-diagonal partner pairs (x < y), identical across depth slices.
    xs, ys = _triu_pairs(dim)
    pairs = np.stack([g.ranks[xs, ys, :].reshape(-1),
                      g.ranks[ys, xs, :].reshape(-1)], axis=1)
    words = local_shape[0] * local_shape[1]
    if pairs.size:
        vm.charge_comm_groups(pairs, cc.transpose_cost(words, 2), phase)

    if not a.is_numeric:
        shared = SymbolicBlock((local_shape[1], local_shape[0]))
        return DistMatrix(g, a.n, a.m, dict.fromkeys(a.blocks, shared))

    new_blocks: Dict[int, Block] = {}
    for z in range(g.dim_z):
        for y in range(g.dim_y):
            for x in range(g.dim_x):
                if x > y:
                    continue
                r_a = g.rank_at(x, y, z)
                r_b = g.rank_at(y, x, z)
                new_blocks[r_a] = a.blocks[r_b].transpose()
                if r_b != r_a:
                    new_blocks[r_b] = a.blocks[r_a].transpose()
    return DistMatrix(g, a.n, a.m, new_blocks)
