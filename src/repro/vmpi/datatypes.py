"""Dual block backend: numeric (numpy) and symbolic (shape-only) local blocks.

Every local matrix owned by a virtual rank is a :class:`Block`.  The core
algorithms are written once against this interface; running them with
:class:`NumericBlock` gives real floating-point results, running them with
:class:`SymbolicBlock` gives a zero-memory *cost simulation* in which the
same communication schedule executes and the same flop counts are charged,
but no arithmetic happens.  This is what lets the benchmark harness replay
the paper's experiments at sizes like ``2**25 x 2**10`` on a laptop.

Blocks are immutable by convention: operations return new blocks, and the
collectives copy numeric payloads so no two ranks alias the same buffer.
Symbolic blocks carry no data at all, so they are *freely shared*:
``SymbolicBlock.copy()`` returns the same object, and collectives deliver
one shared block to a whole group through :class:`SharedBlockMap` -- a
million-rank symbolic matrix costs one block, not a million.
Flop accounting is *not* done here -- the kernels layer
(:mod:`repro.kernels`) computes flop counts from shapes and charges the
ledger; blocks only carry data/shape.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Tuple, Union

import numpy as np

from repro.utils.validation import require

Shape = Tuple[int, int]


class Block:
    """Abstract local matrix block.  See module docstring."""

    __slots__ = ()

    @property
    def shape(self) -> Shape:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def words(self) -> int:
        """Number of words (matrix entries) in this block."""
        m, n = self.shape
        return m * n

    @property
    def is_numeric(self) -> bool:
        return isinstance(self, NumericBlock)

    # -- shape-generic operations -------------------------------------------------

    def matmul(self, other: "Block") -> "Block":
        raise NotImplementedError

    def transpose(self) -> "Block":
        raise NotImplementedError

    def add(self, other: "Block") -> "Block":
        raise NotImplementedError

    def sub(self, other: "Block") -> "Block":
        raise NotImplementedError

    def neg(self) -> "Block":
        raise NotImplementedError

    def scale(self, scalar: float) -> "Block":
        raise NotImplementedError

    def copy(self) -> "Block":
        raise NotImplementedError

    def quadrant(self, i: int, j: int) -> "Block":
        """Local part of global quadrant ``(i, j)`` under a cyclic layout.

        Requires even local extents; see :mod:`repro.utils.partition` for why
        cyclic layouts make quadrants contiguous local halves.
        """
        raise NotImplementedError

    def columns(self, lo: int, hi: int) -> "Block":
        """Local column slice ``[lo, hi)`` (used for panel extraction)."""
        raise NotImplementedError

    def _check_columns_args(self, lo: int, hi: int) -> None:
        require(0 <= lo <= hi <= self.shape[1],
                f"column slice [{lo}, {hi}) out of range for shape {self.shape}")

    def _check_quadrant_args(self, i: int, j: int) -> Tuple[int, int]:
        require(i in (0, 1) and j in (0, 1), f"quadrant indices must be 0/1, got ({i}, {j})")
        m, n = self.shape
        require(m % 2 == 0 and n % 2 == 0,
                f"block of shape {self.shape} cannot be split into quadrants")
        return m // 2, n // 2


class NumericBlock(Block):
    """A block backed by a real 2D :class:`numpy.ndarray`."""

    __slots__ = ("data",)

    def __init__(self, data: np.ndarray):
        arr = np.asarray(data, dtype=np.float64)
        require(arr.ndim == 2, f"NumericBlock requires a 2D array, got ndim={arr.ndim}")
        self.data = arr

    @property
    def shape(self) -> Shape:
        return self.data.shape  # type: ignore[return-value]

    def matmul(self, other: Block) -> "NumericBlock":
        o = _require_numeric(other)
        require(self.shape[1] == o.shape[0],
                f"matmul shape mismatch: {self.shape} @ {o.shape}")
        return NumericBlock(self.data @ o.data)

    def transpose(self) -> "NumericBlock":
        # .copy() (not ascontiguousarray) because a transposed single-row/
        # single-column block is already contiguous, and ascontiguousarray
        # would return a VIEW -- aliasing the source buffer across blocks.
        return NumericBlock(self.data.T.copy())

    def add(self, other: Block) -> "NumericBlock":
        o = _require_numeric(other)
        require(self.shape == o.shape, f"add shape mismatch: {self.shape} vs {o.shape}")
        return NumericBlock(self.data + o.data)

    def sub(self, other: Block) -> "NumericBlock":
        o = _require_numeric(other)
        require(self.shape == o.shape, f"sub shape mismatch: {self.shape} vs {o.shape}")
        return NumericBlock(self.data - o.data)

    def neg(self) -> "NumericBlock":
        return NumericBlock(-self.data)

    def scale(self, scalar: float) -> "NumericBlock":
        return NumericBlock(self.data * scalar)

    def copy(self) -> "NumericBlock":
        return NumericBlock(self.data.copy())

    def quadrant(self, i: int, j: int) -> "NumericBlock":
        hr, hc = self._check_quadrant_args(i, j)
        return NumericBlock(self.data[i * hr:(i + 1) * hr, j * hc:(j + 1) * hc].copy())

    def columns(self, lo: int, hi: int) -> "NumericBlock":
        self._check_columns_args(lo, hi)
        return NumericBlock(np.ascontiguousarray(self.data[:, lo:hi]))

    def __repr__(self) -> str:  # pragma: no cover
        return f"NumericBlock(shape={self.shape})"


class SymbolicBlock(Block):
    """A block that carries only its shape.

    All operations validate shapes exactly like the numeric backend (so a
    cost simulation exercises the same invariants) but produce no data.
    """

    __slots__ = ("_shape",)

    def __init__(self, shape: Shape):
        m, n = int(shape[0]), int(shape[1])
        require(m >= 0 and n >= 0, f"shape extents must be non-negative, got {shape}")
        self._shape = (m, n)

    @property
    def shape(self) -> Shape:
        return self._shape

    def matmul(self, other: Block) -> "SymbolicBlock":
        o = _require_symbolic(other)
        require(self.shape[1] == o.shape[0],
                f"matmul shape mismatch: {self.shape} @ {o.shape}")
        return SymbolicBlock((self.shape[0], o.shape[1]))

    def transpose(self) -> "SymbolicBlock":
        return SymbolicBlock((self.shape[1], self.shape[0]))

    def add(self, other: Block) -> "SymbolicBlock":
        o = _require_symbolic(other)
        require(self.shape == o.shape, f"add shape mismatch: {self.shape} vs {o.shape}")
        return SymbolicBlock(self.shape)

    def sub(self, other: Block) -> "SymbolicBlock":
        o = _require_symbolic(other)
        require(self.shape == o.shape, f"sub shape mismatch: {self.shape} vs {o.shape}")
        return SymbolicBlock(self.shape)

    def neg(self) -> "SymbolicBlock":
        return SymbolicBlock(self.shape)

    def scale(self, scalar: float) -> "SymbolicBlock":
        return SymbolicBlock(self.shape)

    def copy(self) -> "SymbolicBlock":
        # Shape-only blocks are immutable, so a "copy" is the block itself;
        # sharing is what keeps symbolic runs O(1) memory per delivery.
        return self

    def quadrant(self, i: int, j: int) -> "SymbolicBlock":
        hr, hc = self._check_quadrant_args(i, j)
        return SymbolicBlock((hr, hc))

    def columns(self, lo: int, hi: int) -> "SymbolicBlock":
        self._check_columns_args(lo, hi)
        return SymbolicBlock((self.shape[0], hi - lo))

    def __repr__(self) -> str:  # pragma: no cover
        return f"SymbolicBlock(shape={self.shape})"


class SharedBlockMap(Mapping):
    """A ``{rank: block}`` mapping where every rank maps to one shared block.

    Symbolic collectives return this instead of materializing a per-rank
    dict: delivery to a million-rank group costs one object.  It supports
    everything the per-rank dict consumers use (``[]``, iteration,
    ``keys``, ``len``, ``dict.update(...)``) and is immutable.
    """

    __slots__ = ("_ranks", "block", "_rank_set")

    def __init__(self, ranks: "np.ndarray", block: Block):
        self._ranks = np.asarray(ranks, dtype=np.intp).reshape(-1)
        self.block = block
        self._rank_set = None

    def __getitem__(self, rank: int) -> Block:
        if rank in self.rank_set():
            return self.block
        raise KeyError(rank)

    def __iter__(self) -> Iterator[int]:
        return iter(self._ranks.tolist())

    def __len__(self) -> int:
        return self._ranks.size

    def __contains__(self, rank: object) -> bool:
        return rank in self.rank_set()

    def rank_set(self) -> frozenset:
        if self._rank_set is None:
            self._rank_set = frozenset(self._ranks.tolist())
        return self._rank_set

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SharedBlockMap(ranks={self._ranks.size}, block={self.block!r})"


def _require_numeric(block: Block) -> NumericBlock:
    if not isinstance(block, NumericBlock):
        raise TypeError(f"expected NumericBlock, got {type(block).__name__}; "
                        "numeric and symbolic blocks cannot be mixed in one run")
    return block


def _require_symbolic(block: Block) -> SymbolicBlock:
    if not isinstance(block, SymbolicBlock):
        raise TypeError(f"expected SymbolicBlock, got {type(block).__name__}; "
                        "numeric and symbolic blocks cannot be mixed in one run")
    return block


def make_block(source: Union[np.ndarray, Shape], symbolic: bool = False) -> Block:
    """Build a block from an array (numeric) or a shape (either backend)."""
    if isinstance(source, np.ndarray):
        if symbolic:
            return SymbolicBlock(source.shape)  # type: ignore[arg-type]
        return NumericBlock(source)
    if symbolic:
        return SymbolicBlock(source)  # type: ignore[arg-type]
    return NumericBlock(np.zeros(source))


def zeros_block(shape: Shape, symbolic: bool) -> Block:
    """An all-zeros block of the requested backend."""
    if symbolic:
        return SymbolicBlock(shape)
    return NumericBlock(np.zeros(shape))


def join_blocks(a11: Block, a12: Block, a21: Block, a22: Block) -> Block:
    """Assemble four quadrant blocks back into one block (inverse of ``quadrant``)."""
    for b in (a12, a21, a22):
        require(type(b) is type(a11), "cannot join blocks of mixed backends")
    require(a11.shape[0] == a12.shape[0] and a21.shape[0] == a22.shape[0]
            and a11.shape[1] == a21.shape[1] and a12.shape[1] == a22.shape[1],
            f"quadrant shapes incompatible: {a11.shape} {a12.shape} {a21.shape} {a22.shape}")
    if isinstance(a11, SymbolicBlock):
        return SymbolicBlock((a11.shape[0] + a21.shape[0], a11.shape[1] + a12.shape[1]))
    top = np.hstack((a11.data, a12.data))  # type: ignore[union-attr]
    bot = np.hstack((a21.data, a22.data))  # type: ignore[union-attr]
    return NumericBlock(np.vstack((top, bot)))
