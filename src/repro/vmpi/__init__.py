"""Virtual MPI: a single-process simulation of a distributed-memory machine.

The paper's implementation is C++/MPI on up to 131072 processes.  This
substrate replaces MPI with deterministic *lock-step orchestration*: every
virtual rank owns local blocks in a rank-indexed store, and collectives are
implemented as block shuffles over rank groups that simultaneously charge
the paper's butterfly cost formulas to each participant's ledger and
synchronize their BSP clocks.

Key pieces:

* :mod:`repro.vmpi.datatypes` -- the dual block backend.  ``NumericBlock``
  wraps a real numpy array (numerics are bit-faithful to a lock-step MPI
  run); ``SymbolicBlock`` carries only a shape so the same algorithm code
  can be cost-simulated at paper scale without allocating memory.
* :mod:`repro.vmpi.machine` -- the :class:`VirtualMachine`: array-backed
  rank state (one clock vector, interned-phase ledger planes), vectorized
  charging, pluggable trace sinks, report generation.
* :mod:`repro.vmpi.comm` -- :class:`Communicator`: Bcast / Reduce /
  Allreduce / Allgather / pairwise exchange over ordered rank groups.
* :mod:`repro.vmpi.grid` -- 3D processor grids ``Pi[x, y, z]`` with slices,
  fibers, mod-c subgroups and cubic subcubes (the index algebra of
  Sections II-B and III-B).
* :mod:`repro.vmpi.distmatrix` -- cyclically distributed matrices replicated
  over grid depth, with gather/scatter to global numpy arrays.
"""

from repro.vmpi.datatypes import (
    Block,
    NumericBlock,
    SharedBlockMap,
    SymbolicBlock,
    make_block,
    zeros_block,
)
from repro.vmpi.machine import TraceEvent, TraceRecorder, TraceSink, VirtualMachine
from repro.vmpi.comm import Communicator
from repro.vmpi.grid import Grid3D
from repro.vmpi.distmatrix import DistMatrix, Replicated, dist_transpose
from repro.vmpi.trace import (
    format_phase_profile,
    idle_fraction,
    phase_profile,
    render_gantt,
)

__all__ = [
    "Block",
    "NumericBlock",
    "SharedBlockMap",
    "SymbolicBlock",
    "make_block",
    "zeros_block",
    "TraceEvent",
    "TraceRecorder",
    "TraceSink",
    "VirtualMachine",
    "Communicator",
    "Grid3D",
    "DistMatrix",
    "Replicated",
    "dist_transpose",
    "format_phase_profile",
    "idle_fraction",
    "phase_profile",
    "render_gantt",
]
