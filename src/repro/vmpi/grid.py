"""3D processor grids and their index algebra (Sections II-B, III-B).

A :class:`Grid3D` is an array of machine ranks indexed by coordinates
``Pi[x, y, z]``.  For the tunable CA-CQR2 grid of shape ``c x d x c``:

* ``x`` (size ``c``) indexes **column** blocks of the distributed matrix,
* ``y`` (size ``d``) indexes **row** blocks,
* ``z`` (size ``c``) is the replication **depth**.

The grid exposes exactly the communicator families the paper uses:

* ``comm_x(y, z)``  -- row communicator ``Pi[:, y, z]``;
* ``comm_y(x, z)``  -- column communicator ``Pi[x, :, z]``;
* ``comm_z(x, y)``  -- depth communicator ``Pi[x, y, :]``;
* ``comm_slice(z)`` -- a whole 2D slice ``Pi[:, :, z]`` (base-case Allgather);
* ``comm_y_group(x, z, group, c)``    -- the contiguous group
  ``Pi[x, c*floor(y/c) : c*ceil(y/c), z]`` of Algorithm 8 line 3;
* ``comm_y_strided(x, z, residue, c)`` -- the stride-``c`` subgroup
  ``Pi[x, residue::c, z]`` of Algorithm 8 line 4;
* ``subcube(group)`` -- the cubic ``c x c x c`` subgrid on which ``d/c``
  simultaneous CFR3D instances run (Algorithm 8 line 6).

Subgrids are themselves :class:`Grid3D` objects sharing the parent's
machine, so every algorithm is oblivious to whether it runs on the root
grid or a subcube.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.utils.validation import check_positive_int, require
from repro.vmpi.comm import Communicator
from repro.vmpi.machine import VirtualMachine

Coords = Tuple[int, int, int]


class Grid3D:
    """A (sub)grid of virtual ranks with coordinates ``[x, y, z]``."""

    __slots__ = ("vm", "ranks", "_flat", "_rank_set")

    def __init__(self, vm: VirtualMachine, ranks: np.ndarray):
        require(ranks.ndim == 3, f"rank array must be 3D, got ndim={ranks.ndim}")
        arr = np.ascontiguousarray(ranks).astype(np.intp, copy=False)
        flat = arr.reshape(-1)
        require(np.unique(flat).size == flat.size,
                "grid rank array contains duplicate machine ranks")
        if flat.size:
            lo, hi = int(flat.min()), int(flat.max())
            require(0 <= lo and hi < vm.num_ranks,
                    f"machine rank {lo if lo < 0 else hi} out of range "
                    f"[0, {vm.num_ranks})")
        self.vm = vm
        self.ranks = arr
        self._flat = flat
        self._rank_set = None

    # -- construction -------------------------------------------------------------

    @classmethod
    def build(cls, vm: VirtualMachine, dim_x: int, dim_y: int, dim_z: int,
              offset: int = 0) -> "Grid3D":
        """Root grid over machine ranks ``[offset, offset + x*y*z)``.

        Rank numbering is x-fastest (``rank = offset + x + dim_x*(y + dim_y*z)``),
        matching a column-major MPI Cart layout; nothing downstream depends
        on the choice.
        """
        check_positive_int(dim_x, "dim_x")
        check_positive_int(dim_y, "dim_y")
        check_positive_int(dim_z, "dim_z")
        p = dim_x * dim_y * dim_z
        require(offset + p <= vm.num_ranks,
                f"grid of {p} ranks at offset {offset} exceeds machine size {vm.num_ranks}")
        ranks = (offset + np.arange(p)).reshape(dim_z, dim_y, dim_x).transpose(2, 1, 0)
        return cls(vm, np.ascontiguousarray(ranks))

    @classmethod
    def tunable(cls, vm: VirtualMachine, c: int, d: int, offset: int = 0) -> "Grid3D":
        """The paper's ``c x d x c`` tunable grid (``P = c*c*d``)."""
        return cls.build(vm, c, d, c, offset=offset)

    @classmethod
    def cubic(cls, vm: VirtualMachine, p: int, offset: int = 0) -> "Grid3D":
        """A ``p x p x p`` cubic grid (3D-CQR2, CFR3D, MM3D)."""
        return cls.build(vm, p, p, p, offset=offset)

    # -- geometry -----------------------------------------------------------------

    @property
    def dims(self) -> Tuple[int, int, int]:
        return self.ranks.shape  # type: ignore[return-value]

    @property
    def dim_x(self) -> int:
        return self.ranks.shape[0]

    @property
    def dim_y(self) -> int:
        return self.ranks.shape[1]

    @property
    def dim_z(self) -> int:
        return self.ranks.shape[2]

    @property
    def size(self) -> int:
        return self.ranks.size

    @property
    def is_cubic(self) -> bool:
        return self.dim_x == self.dim_y == self.dim_z

    def rank_at(self, x: int, y: int, z: int) -> int:
        """Machine rank of ``Pi[x, y, z]``."""
        return int(self.ranks[x, y, z])

    def coords(self) -> Iterator[Coords]:
        """Iterate all coordinates (x-fastest)."""
        dx, dy, dz = self.dims
        for z in range(dz):
            for y in range(dy):
                for x in range(dx):
                    yield (x, y, z)

    def all_ranks(self) -> List[int]:
        return self._flat.tolist()

    @property
    def all_ranks_array(self) -> np.ndarray:
        """Every machine rank of the grid as a flat intp array.

        Raveled in the rank array's C order; the vectorized charging paths
        that consume it treat the group as a set, so the order is
        irrelevant there.
        """
        return self._flat

    @property
    def rank_set(self) -> frozenset:
        """Cached frozenset of the grid's machine ranks (membership checks)."""
        if self._rank_set is None:
            self._rank_set = frozenset(self._flat.tolist())
        return self._rank_set

    # -- communicators ------------------------------------------------------------

    def comm_x(self, y: int, z: int) -> Communicator:
        """Row communicator ``Pi[:, y, z]`` (varying x), ordered by x."""
        return Communicator(self.vm, self.ranks[:, y, z])

    def comm_y(self, x: int, z: int) -> Communicator:
        """Column communicator ``Pi[x, :, z]`` (varying y), ordered by y."""
        return Communicator(self.vm, self.ranks[x, :, z])

    def comm_z(self, x: int, y: int) -> Communicator:
        """Depth communicator ``Pi[x, y, :]`` (varying z), ordered by z."""
        return Communicator(self.vm, self.ranks[x, y, :])

    def comm_slice(self, z: int) -> Communicator:
        """All ranks of slice ``Pi[:, :, z]``, ordered (y-major, x-minor)."""
        face = self.ranks[:, :, z]
        return Communicator(self.vm, face.T.reshape(-1))

    def comm_y_group(self, x: int, z: int, group: int, c: int) -> Communicator:
        """Contiguous y-group ``Pi[x, group*c : (group+1)*c, z]`` (Alg. 8 line 3)."""
        check_positive_int(c, "c")
        require(0 <= group < self.dim_y // c,
                f"group {group} out of range for dim_y={self.dim_y}, c={c}")
        return Communicator(self.vm, self.ranks[x, group * c:(group + 1) * c, z])

    def comm_y_strided(self, x: int, z: int, residue: int, c: int) -> Communicator:
        """Stride-``c`` y-subgroup ``Pi[x, residue::c, z]`` (Alg. 8 line 4)."""
        check_positive_int(c, "c")
        require(0 <= residue < c, f"residue {residue} out of range [0, {c})")
        return Communicator(self.vm, self.ranks[x, residue::c, z])

    # -- subgrids -----------------------------------------------------------------

    def subcube(self, group: int, c: Optional[int] = None) -> "Grid3D":
        """Cubic subgrid ``Pi[:, group*c : (group+1)*c, :]`` (Alg. 8 line 6).

        Requires ``dim_x == dim_z`` and defaults ``c`` to that extent.
        """
        require(self.dim_x == self.dim_z,
                f"subcubes need dim_x == dim_z, got {self.dims}")
        c = self.dim_x if c is None else c
        require(c == self.dim_x, f"subcube extent {c} must equal dim_x {self.dim_x}")
        require(self.dim_y % c == 0,
                f"dim_y={self.dim_y} not divisible by c={c}")
        require(0 <= group < self.dim_y // c,
                f"group {group} out of range for dim_y={self.dim_y}, c={c}")
        sub = self.ranks[:, group * c:(group + 1) * c, :]
        return Grid3D(self.vm, sub)

    def num_subcubes(self) -> int:
        """Number of cubic subgrids ``d / c`` along y."""
        require(self.dim_x == self.dim_z, f"subcubes need dim_x == dim_z, got {self.dims}")
        require(self.dim_y % self.dim_x == 0,
                f"dim_y={self.dim_y} not divisible by c={self.dim_x}")
        return self.dim_y // self.dim_x

    def transpose_partner(self, x: int, y: int, z: int) -> Coords:
        """Partner coordinates ``(y, x, z)`` for the global matrix Transpose.

        Requires a square face (``dim_x == dim_y``), which holds on every
        cubic grid where CFR3D performs transposes.
        """
        require(self.dim_x == self.dim_y,
                f"transpose needs a square face, got dims {self.dims}")
        return (y, x, z)

    def matches(self, other: "Grid3D") -> bool:
        """Structural equality: same machine and same rank array.

        Distinct :class:`Grid3D` objects over identical ranks (e.g. the same
        subcube extracted in two CA-CQR passes) are interchangeable.
        """
        return self.vm is other.vm and np.array_equal(self.ranks, other.ranks)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Grid3D(dims={self.dims})"
